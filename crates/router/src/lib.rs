//! # router — a sharded dynamic graph behind an async batch router
//!
//! The paper's structure is a single-GPU graph; the roadmap's north star is
//! a service. This crate bridges the two: a [`ShardedGraph`] hash-partitions
//! the vertex dictionary across N `DynGraph` shards, each on its own device
//! of a [`gpu_sim::DeviceGroup`], and a [`BatchRouter`] coalesces updates
//! from concurrent client sessions into per-shard batches dispatched
//! concurrently — CUDA-streams style, with the overlap visible in a merged
//! Chrome trace.
//!
//! ## Partitioning and the cut-edge protocol
//!
//! Vertex `v` is *owned* by shard [`shard_of`]`(v, n)` (a splitmix64
//! finalizer, so ownership is balanced regardless of id structure and
//! deterministic across runs). A directed edge ⟨u,v⟩ has its **primary**
//! copy on `owner(u)` — the shard that answers every query about `u` — and,
//! when `owner(v) != owner(u)` (a *cut edge*), a **replica** copy on
//! `owner(v)`, stored under the same ⟨u → v⟩ key. Replicas keep each shard
//! self-contained for dst-side work: vertex deletion can tombstone incoming
//! edges without a cross-shard scatter, and [`ShardedGraph::validate`] can
//! audit consistency pairwise. Because every query routes to the owner and
//! `changed` counts come from primary sub-batches only, results are
//! *identical* to an unsharded `DynGraph` replaying the same stream —
//! `tests/sharding.rs` asserts this at 1/2/4 shards.
//!
//! ## The router
//!
//! Client sessions [`BatchRouter::submit`] updates concurrently (each
//! session's order is preserved; sessions are drained in id order, so a
//! flush is deterministic regardless of arrival interleaving).
//! [`BatchRouter::flush`] coalesces the queue into one insert and one
//! delete batch per shard, dispatches all shards concurrently through the
//! device group's executor, and returns per-shard [`BatchOutcome`]s plus
//! per-shard modeled times. A shard that runs out of memory (capacity
//! budget or injected fault) reports a *partial* outcome with its pending
//! suffix while the other shards complete unaffected; after the caller
//! raises the budget (or clears the fault plan), [`BatchRouter::recover`]
//! resumes exactly the pending suffixes via `retry_suffix`.

use gpu_sim::{
    CostModel, Device, DeviceConfig, DeviceFault, DeviceGroup, ExecPolicy, MetricSummary,
    MetricsRegistry, OpAttributionRow, ShardHealthRow, TailExemplarRow, TraceCtx, TraceReport,
};
use parking_lot::{Mutex, RwLock};
use slabgraph::{
    BatchOutcome, Direction, DynGraph, Edge, GraphConfig, GraphError, ReadGuard, ValidationError,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The owner shard of vertex `v` among `n_shards`: a splitmix64 finalizer
/// over the id, reduced mod `n_shards`. Deterministic, balanced, and
/// independent of insertion order.
pub fn shard_of(v: u32, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    let mut z = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) % n_shards as u64) as usize
}

/// Per-shard edge batches produced by partitioning one logical batch:
/// `primary[s]` holds edges whose src shard `s` owns, `replica[s]` the cut
/// edges mirrored to `s` because it owns the dst.
struct ShardBatches {
    primary: Vec<Vec<Edge>>,
    replica: Vec<Vec<Edge>>,
}

/// A dynamic graph hash-partitioned across N [`DynGraph`] shards, one per
/// device of a [`DeviceGroup`]. See the crate docs for the cut-edge
/// protocol and determinism guarantees.
pub struct ShardedGraph {
    group: DeviceGroup,
    /// Per-shard graphs behind rwlocks: ordinary operation takes read
    /// guards (all `DynGraph` methods are `&self`), a rebuild takes the
    /// write guard to swap in a fresh graph after a device reset.
    shards: Vec<RwLock<DynGraph>>,
    /// The per-shard config, kept so [`Self::reset_shard`] can rebuild a
    /// structurally identical graph on the reset device.
    shard_cfg: GraphConfig,
    direction: Direction,
    n_vertices: u32,
    /// Op-id source for direct (router-less) dispatches, so every shard
    /// dispatch carries a [`TraceCtx`] even outside a [`BatchRouter`].
    ops: AtomicU64,
}

// The shard dispatch path shares `&DynGraph` across scoped threads.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<DynGraph>();
    assert_sync::<Device>();
};

impl ShardedGraph {
    /// Build an empty sharded graph. `config` describes the *aggregate*
    /// structure: the device budget and slab pool are split evenly across
    /// shards (so scaling the shard count compares like-for-like), every
    /// shard keeps the full vertex-id range (any id can own primaries or
    /// host replicas), and undirected semantics are applied here — shards
    /// are always directed, because the two half-edges of an undirected
    /// pair can have different owners.
    pub fn new(n_shards: usize, config: GraphConfig) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let per_shard_words = (config.device_words / n_shards).max(1 << 14);
        let group = DeviceGroup::new(
            n_shards,
            DeviceConfig {
                initial_words: per_shard_words,
                capacity_words: config.device_capacity_words,
                policy: ExecPolicy::Sequential,
                ..DeviceConfig::default()
            },
        );
        let shard_cfg = GraphConfig {
            direction: Direction::Directed,
            device_words: per_shard_words,
            pool_slabs: (config.pool_slabs / n_shards).max(1 << 6),
            ..config
        };
        let shards = (0..n_shards)
            .map(|s| RwLock::new(DynGraph::on_device(group.device(s).clone(), shard_cfg)))
            .collect();
        ShardedGraph {
            group,
            shards,
            shard_cfg,
            direction: config.direction,
            n_vertices: config.vertex_capacity,
            ops: AtomicU64::new(0),
        }
    }

    /// Mint a root [`TraceCtx`] for one direct dispatch: no client
    /// session, op ids from the graph's own counter. Sharing one ctx
    /// across every shard of a dispatch ties the per-shard spans into a
    /// single op in the merged trace (Perfetto draws the flow arrows).
    fn dispatch_ctx(&self) -> TraceCtx {
        TraceCtx::root(
            TraceCtx::NO_SESSION,
            self.ops.fetch_add(1, Ordering::AcqRel),
        )
    }

    /// Build and populate from an edge list in one step.
    pub fn bulk_build(n_shards: usize, config: GraphConfig, edges: &[Edge]) -> Self {
        let g = Self::new(n_shards, config);
        g.insert_edges(edges);
        g
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The device group the shards run on (per-shard devices, merged
    /// traces, Chrome export).
    pub fn group(&self) -> &DeviceGroup {
        &self.group
    }

    /// Shard `s`'s graph (owner-side tables plus replicas it hosts). The
    /// returned read guard derefs to [`DynGraph`]; it blocks only against
    /// an in-flight [`Self::reset_shard`] on the same shard.
    pub fn shard(&self, s: usize) -> impl std::ops::Deref<Target = DynGraph> + '_ {
        self.shards[s].read()
    }

    /// Tear shard `s` down to an empty graph on a freshly reset device:
    /// the device arena is wiped (freeing its whole budget), the
    /// sanitizer's shadow state is discarded (findings survive), and a
    /// structurally identical empty [`DynGraph`] replaces the old one.
    /// Blocks until every outstanding [`Self::shard`] guard is released.
    /// The caller owns repopulation — see `BatchRouter::rebuild_downed`
    /// for the journal-replay path.
    pub fn reset_shard(&self, s: usize) {
        let mut guard = self.shards[s].write();
        let dev = self.group.device(s).clone();
        dev.reset();
        *guard = DynGraph::on_device(dev, self.shard_cfg);
    }

    /// The owner shard of vertex `v`.
    pub fn owner_of(&self, v: u32) -> usize {
        shard_of(v, self.shards.len())
    }

    /// Vertex capacity (ids are `0..vertex_capacity`).
    pub fn vertex_capacity(&self) -> u32 {
        self.n_vertices
    }

    /// Mirror for undirected semantics, then split into per-shard primary
    /// and replica batches, preserving batch order within each shard.
    fn partition(&self, edges: &[Edge]) -> ShardBatches {
        let n = self.shards.len();
        let mut primary: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut replica: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut route = |e: Edge| {
            let su = shard_of(e.src, n);
            let sv = shard_of(e.dst, n);
            primary[su].push(e);
            if sv != su {
                replica[sv].push(e);
            }
        };
        for &e in edges {
            route(e);
            if self.direction == Direction::Undirected {
                route(e.reversed());
            }
        }
        ShardBatches { primary, replica }
    }

    /// Insert a batch of edges; returns how many were new (summed over
    /// undirected mirror copies, exactly like `DynGraph::insert_edges`).
    /// Shards run concurrently; the count comes from primary copies only,
    /// so it matches an unsharded replay.
    pub fn insert_edges(&self, edges: &[Edge]) -> u64 {
        let parts = self.partition(edges);
        let ctx = self.dispatch_ctx();
        self.group
            .dispatch(|s, dev| {
                let _trace = dev.trace_scope(ctx);
                let g = self.shards[s].read();
                let changed = g.insert_edges(&parts.primary[s]);
                g.insert_edges(&parts.replica[s]);
                changed
            })
            .iter()
            .sum()
    }

    /// Delete a batch of edges; returns how many were present (primary
    /// copies only — see [`Self::insert_edges`]).
    pub fn delete_edges(&self, edges: &[Edge]) -> u64 {
        let parts = self.partition(edges);
        let ctx = self.dispatch_ctx();
        self.group
            .dispatch(|s, dev| {
                let _trace = dev.trace_scope(ctx);
                let g = self.shards[s].read();
                let changed = g.delete_edges(&parts.primary[s]);
                g.delete_edges(&parts.replica[s]);
                changed
            })
            .iter()
            .sum()
    }

    /// Delete vertices and every incident edge. Every shard runs the
    /// deletion: the owner drops the vertex's primary tables, shards
    /// hosting replicas of its out-edges drop those tables too, and the
    /// dst-side sweep on each shard tombstones incoming copies — so no
    /// cross-shard scatter is needed.
    pub fn delete_vertices(&self, vertices: &[u32]) {
        let ctx = self.dispatch_ctx();
        self.group.dispatch(|s, dev| {
            let _trace = dev.trace_scope(ctx);
            self.shards[s].read().delete_vertices(vertices);
        });
    }

    /// Pin every shard's current era for a snapshot read session: one
    /// [`ReadGuard`] per shard, in shard order. While the guards live, no
    /// shard recycles a slab freed at or after its pinned era, so the
    /// `*_pinned` queries run safely concurrent with in-flight update
    /// batches on other threads. Guards pin *reclamation*, not data:
    /// reads under them observe the newest published state.
    pub fn pin_read(&self) -> Vec<ReadGuard> {
        self.shards.iter().map(|s| s.read().pin_read()).collect()
    }

    /// Membership query for one edge, answered by `src`'s owner under a
    /// per-call era pin.
    pub fn edge_exists(&self, src: u32, dst: u32) -> bool {
        let g = self.shards[self.owner_of(src)].read();
        g.edge_exists(&g.pin_read(), src, dst)
    }

    /// [`Self::edge_exists`] under an explicit per-shard pin from
    /// [`Self::pin_read`] (one guard per shard, shard order).
    pub fn edge_exists_pinned(&self, pins: &[ReadGuard], src: u32, dst: u32) -> bool {
        let owner = self.owner_of(src);
        self.shards[owner]
            .read()
            .edge_exists(&pins[owner], src, dst)
    }

    /// Route `pairs` to their src's owner, run `query` per shard
    /// concurrently, and return results in the caller's order.
    fn edges_exist_routed(
        &self,
        pairs: &[(u32, u32)],
        query: impl Fn(usize, &DynGraph, &[(u32, u32)]) -> Vec<bool> + Sync,
    ) -> Vec<bool> {
        let n = self.shards.len();
        let mut index: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut per: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for (i, &p) in pairs.iter().enumerate() {
            let s = shard_of(p.0, n);
            index[s].push(i);
            per[s].push(p);
        }
        let ctx = self.dispatch_ctx();
        let results = self.group.dispatch(|s, dev| {
            let _trace = dev.trace_scope(ctx);
            query(s, &self.shards[s].read(), &per[s])
        });
        let mut out = vec![false; pairs.len()];
        for (s, found) in results.into_iter().enumerate() {
            for (k, b) in found.into_iter().enumerate() {
                out[index[s][k]] = b;
            }
        }
        out
    }

    /// Batched membership queries: pairs route to their src's owner, the
    /// per-shard query kernels run concurrently (each under its own era
    /// pin), and results return in the caller's order — bit-identical to
    /// an unsharded replay.
    pub fn edges_exist(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        self.edges_exist_routed(pairs, |_, g, per| g.edges_exist(&g.pin_read(), per))
    }

    /// [`Self::edges_exist`] under an explicit per-shard pin from
    /// [`Self::pin_read`].
    pub fn edges_exist_pinned(&self, pins: &[ReadGuard], pairs: &[(u32, u32)]) -> Vec<bool> {
        self.edges_exist_routed(pairs, |s, g, per| g.edges_exist(&pins[s], per))
    }

    /// Out-degree of `u`, from its owner shard.
    pub fn degree(&self, u: u32) -> u32 {
        self.shards[self.owner_of(u)].read().degree(u)
    }

    /// `u`'s neighbours, from its owner shard (the primary copy holds the
    /// complete adjacency), under a per-call era pin.
    pub fn neighbor_ids(&self, u: u32) -> Vec<u32> {
        let g = self.shards[self.owner_of(u)].read();
        g.neighbor_ids(&g.pin_read(), u)
    }

    /// [`Self::neighbor_ids`] under an explicit per-shard pin from
    /// [`Self::pin_read`].
    pub fn neighbor_ids_pinned(&self, pins: &[ReadGuard], u: u32) -> Vec<u32> {
        let owner = self.owner_of(u);
        self.shards[owner].read().neighbor_ids(&pins[owner], u)
    }

    /// Allocation-free adjacency iteration on the owner shard, under a
    /// per-call era pin.
    pub fn for_each_neighbor(&self, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        let g = self.shards[self.owner_of(u)].read();
        g.for_each_neighbor(&g.pin_read(), u, f)
    }

    /// [`Self::for_each_neighbor`] under an explicit per-shard pin from
    /// [`Self::pin_read`].
    pub fn for_each_neighbor_pinned(
        &self,
        pins: &[ReadGuard],
        u: u32,
        f: &mut (dyn FnMut(u32) + Send),
    ) {
        let owner = self.owner_of(u);
        self.shards[owner]
            .read()
            .for_each_neighbor(&pins[owner], u, f)
    }

    /// Exact live-edge count: the sum of owned-vertex degrees across
    /// shards (replicas are bookkeeping, not extra edges).
    pub fn num_edges(&self) -> u64 {
        let ctx = self.dispatch_ctx();
        self.group
            .dispatch(|s, dev| {
                let _trace = dev.trace_scope(ctx);
                let g = self.shards[s].read();
                (0..self.n_vertices)
                    .filter(|&v| shard_of(v, self.shards.len()) == s)
                    .map(|v| g.degree(v) as u64)
                    .sum::<u64>()
            })
            .iter()
            .sum()
    }

    /// Full validation: every shard's structural invariants
    /// (`DynGraph::validate`), then the cross-shard audit — every cut edge
    /// present on both owners, no orphan or misrouted replicas, and the
    /// global counts reconcile (`Σ per-shard edges = owned + cut`).
    pub fn validate(&self) -> Result<(), ShardedValidationError> {
        let n = self.shards.len();
        let ctx = self.dispatch_ctx();
        for (s, r) in self
            .group
            .dispatch(|s, dev| {
                let _trace = dev.trace_scope(ctx);
                self.shards[s].read().validate()
            })
            .into_iter()
            .enumerate()
        {
            r.map_err(|source| ShardedValidationError::Shard { shard: s, source })?;
        }
        // One read guard per shard for the whole audit (read-read never
        // blocks; only a concurrent reset would, and the audit must not
        // race one anyway).
        let guards: Vec<_> = self.shards.iter().map(RwLock::read).collect();
        // One era pin per shard for the whole audit walk.
        let pins: Vec<ReadGuard> = guards.iter().map(|g| g.pin_read()).collect();
        let mut cut = 0u64;
        let mut replicas = 0u64;
        let mut owned = 0u64;
        let mut stored = 0u64;
        for u in 0..self.n_vertices {
            let su = shard_of(u, n);
            for (s, shard) in guards.iter().enumerate() {
                let neighbors = shard.neighbor_ids(&pins[s], u);
                stored += neighbors.len() as u64;
                if s == su {
                    owned += neighbors.len() as u64;
                    // Primary side: every cut edge must have its replica.
                    for v in neighbors {
                        let sv = shard_of(v, n);
                        if sv != su {
                            cut += 1;
                            if !guards[sv].edge_exists(&pins[sv], u, v) {
                                return Err(ShardedValidationError::MissingReplica {
                                    src: u,
                                    dst: v,
                                    src_shard: su,
                                    dst_shard: sv,
                                });
                            }
                        }
                    }
                } else {
                    // Replica side: must be dst-owned here and backed by a
                    // live primary on the src's owner.
                    for v in neighbors {
                        replicas += 1;
                        if shard_of(v, n) != s || !guards[su].edge_exists(&pins[su], u, v) {
                            return Err(ShardedValidationError::OrphanReplica {
                                src: u,
                                dst: v,
                                shard: s,
                            });
                        }
                    }
                }
            }
        }
        if replicas != cut || stored != owned + cut {
            return Err(ShardedValidationError::CountMismatch {
                owned,
                cut,
                replicas,
                stored,
            });
        }
        Ok(())
    }
}

/// What [`ShardedGraph::validate`] can find beyond a single shard's own
/// invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardedValidationError {
    /// A shard failed its own `DynGraph::validate`.
    Shard {
        shard: usize,
        source: ValidationError,
    },
    /// A cut edge's primary exists but its replica is missing on the dst
    /// owner.
    MissingReplica {
        src: u32,
        dst: u32,
        src_shard: usize,
        dst_shard: usize,
    },
    /// A replica with no backing primary, or stored on a shard that owns
    /// neither endpoint.
    OrphanReplica { src: u32, dst: u32, shard: usize },
    /// Global reconciliation failed: stored entries must equal owned
    /// primaries plus cut-edge replicas, and replicas must equal cut edges.
    CountMismatch {
        owned: u64,
        cut: u64,
        replicas: u64,
        stored: u64,
    },
}

impl std::fmt::Display for ShardedValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedValidationError::Shard { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            ShardedValidationError::MissingReplica {
                src,
                dst,
                src_shard,
                dst_shard,
            } => write!(
                f,
                "cut edge {src}\u{2192}{dst}: primary on shard {src_shard} but no replica on shard {dst_shard}"
            ),
            ShardedValidationError::OrphanReplica { src, dst, shard } => write!(
                f,
                "shard {shard}: replica {src}\u{2192}{dst} has no backing primary (or wrong owner)"
            ),
            ShardedValidationError::CountMismatch {
                owned,
                cut,
                replicas,
                stored,
            } => write!(
                f,
                "counts do not reconcile: stored {stored} != owned {owned} + cut {cut} (replicas {replicas})"
            ),
        }
    }
}

impl std::error::Error for ShardedValidationError {}

// ---------------------------------------------------------------------------
// GraphBackend: the sharded graph drops into every existing driver.
// ---------------------------------------------------------------------------

impl backend::GraphBackend for ShardedGraph {
    fn name(&self) -> &'static str {
        "ShardedSlabGraph"
    }

    fn caps(&self) -> backend::Capabilities {
        backend::Capabilities {
            insert_edges: true,
            delete_edges: true,
            delete_vertices: true,
            concurrent_reads: true,
            intersection: backend::IntersectionKind::HashProbe,
        }
    }

    fn device(&self) -> &Device {
        self.group.device(0).as_ref()
    }

    fn devices(&self) -> Vec<&Device> {
        self.group.devices().iter().map(|d| d.as_ref()).collect()
    }

    fn num_vertices(&self) -> u32 {
        self.n_vertices
    }

    fn num_edges(&self) -> u64 {
        ShardedGraph::num_edges(self)
    }

    fn degree(&self, u: u32) -> u32 {
        ShardedGraph::degree(self, u)
    }

    fn pin_read(&self) -> backend::ReadPin {
        backend::ReadPin::from_guards(ShardedGraph::pin_read(self))
    }

    fn contains_edge(&self, u: u32, v: u32) -> bool {
        self.edge_exists(u, v)
    }

    fn edges_exist(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        ShardedGraph::edges_exist(self, pairs)
    }

    fn contains_edge_pinned(&self, pin: &backend::ReadPin, u: u32, v: u32) -> bool {
        if pin.is_pinned() {
            self.edge_exists_pinned(pin.guards(), u, v)
        } else {
            self.edge_exists(u, v)
        }
    }

    fn edges_exist_pinned(&self, pin: &backend::ReadPin, pairs: &[(u32, u32)]) -> Vec<bool> {
        if pin.is_pinned() {
            ShardedGraph::edges_exist_pinned(self, pin.guards(), pairs)
        } else {
            ShardedGraph::edges_exist(self, pairs)
        }
    }

    fn read_neighbors_pinned(&self, pin: &backend::ReadPin, u: u32) -> Vec<u32> {
        if pin.is_pinned() {
            self.neighbor_ids_pinned(pin.guards(), u)
        } else {
            self.neighbor_ids(u)
        }
    }

    fn for_each_neighbor_pinned(
        &self,
        pin: &backend::ReadPin,
        u: u32,
        f: &mut (dyn FnMut(u32) + Send),
    ) {
        if pin.is_pinned() {
            ShardedGraph::for_each_neighbor_pinned(self, pin.guards(), u, f)
        } else {
            ShardedGraph::for_each_neighbor(self, u, f)
        }
    }

    fn read_neighbors(&self, u: u32) -> Vec<u32> {
        self.neighbor_ids(u)
    }

    fn for_each_neighbor(&self, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        ShardedGraph::for_each_neighbor(self, u, f)
    }

    fn insert_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        let edges: Vec<Edge> = edges.iter().map(|&p| Edge::from(p)).collect();
        ShardedGraph::insert_edges(self, &edges)
    }

    fn delete_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        let edges: Vec<Edge> = edges.iter().map(|&p| Edge::from(p)).collect();
        ShardedGraph::delete_edges(self, &edges)
    }

    fn delete_vertices(&mut self, vertices: &[u32]) {
        ShardedGraph::delete_vertices(self, vertices)
    }
}

// ---------------------------------------------------------------------------
// The async batch router.
// ---------------------------------------------------------------------------

/// One shard's position in the router's health state machine.
///
/// `Healthy → Suspect` on the first failed launch admission; `Suspect →
/// Healthy` on the next successful dispatch; `Suspect → Down` when the
/// [`RetryPolicy`] is exhausted or the fault is terminal
/// ([`DeviceFault::Lost`]). A Down shard's circuit breaker is *open*: the
/// router stops dispatching to it (batches are journaled and held, reads
/// degrade) until [`BatchRouter::rebuild_downed`] moves it through
/// `Rebuilding` back to `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Dispatching normally.
    Healthy,
    /// At least one launch admission failed recently; still dispatching.
    Suspect,
    /// Circuit breaker open: no dispatch, reads degrade, writes are held
    /// in the journal.
    Down,
    /// Device reset and journal replay in progress; treated like Down for
    /// dispatch and reads.
    Rebuilding,
}

impl ShardHealth {
    /// Stable lowercase name (used in traces, JSON, and renders).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Down => "down",
            ShardHealth::Rebuilding => "rebuilding",
        }
    }

    /// Whether the router may dispatch batches to this shard.
    pub fn is_dispatchable(self) -> bool {
        matches!(self, ShardHealth::Healthy | ShardHealth::Suspect)
    }
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bounded-retry policy for failed launch admissions. Backoff is charged
/// on the *modeled* clock ([`gpu_sim::Profiler::charge_wait`]) and added
/// to the shard's [`ShardOutcome::modeled_s`], so waiting on a flaky
/// shard costs makespan exactly like work does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Admission retries per dispatch before the shard is marked Down.
    pub max_retries: u32,
    /// Backoff before the first retry, in modeled seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each failed retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_s: 50e-6,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry number `attempt` (0-based).
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        self.base_backoff_s * self.multiplier.powi(attempt as i32)
    }
}

/// A typed per-shard dispatch failure. Distinct from the recoverable OOM
/// carried inside a partial [`BatchOutcome`]: a `RouterError` means the
/// batch (or its suffix) was *not* applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouterError {
    /// The batch itself is bad (e.g. an out-of-range vertex id). Not
    /// retried — retrying a poisoned batch can never succeed — and not a
    /// health event: the device is fine, the input is not.
    Poisoned { shard: usize, source: GraphError },
    /// The shard's device refused launch admission and the retry policy
    /// was exhausted (or the fault was terminal). The shard is now Down.
    Fault { shard: usize, source: DeviceFault },
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Poisoned { shard, source } => {
                write!(f, "shard {shard}: poisoned batch: {source}")
            }
            RouterError::Fault { shard, source } => {
                write!(f, "shard {shard}: device fault: {source}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

/// Whether a read was answered by the authoritative owner shard or
/// best-effort from surviving replicas while the owner is Down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadQuality {
    /// Answered by the owner shard: identical to an unsharded replay.
    Exact,
    /// Owner unavailable; answered from cut-edge replicas on surviving
    /// shards. Correct for edges whose replica survives, silent about
    /// shard-internal edges.
    Degraded,
}

/// One journaled router operation (per-shard apply order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JournalOp {
    Insert(Edge),
    Delete(Edge),
}

/// Per-shard write-ahead journal: the acked prefix folded into a compact
/// checkpoint (edge → weight, primaries and replicas alike) plus the
/// ordered unacknowledged log. Truncation on acknowledged apply keeps the
/// journal depth proportional to in-flight work, not history; a rebuild
/// replays checkpoint-then-log into a fresh shard.
#[derive(Debug, Default)]
struct ShardJournal {
    checkpoint: HashMap<(u32, u32), u32>,
    log: Vec<JournalOp>,
    appended: u64,
    acked: u64,
}

impl ShardJournal {
    fn append(&mut self, op: JournalOp) {
        self.log.push(op);
        self.appended += 1;
    }

    /// Unacknowledged entries.
    fn depth(&self) -> usize {
        self.log.len()
    }

    /// Truncate: fold every logged op into the checkpoint. Called when
    /// the shard acknowledges that all outstanding work is applied.
    fn ack_all(&mut self) {
        self.acked += self.log.len() as u64;
        for op in self.log.drain(..) {
            match op {
                JournalOp::Insert(e) => {
                    self.checkpoint.insert((e.src, e.dst), e.weight);
                }
                JournalOp::Delete(e) => {
                    self.checkpoint.remove(&(e.src, e.dst));
                }
            }
        }
    }
}

/// Per-shard router state: health machine position, cumulative
/// fault-tolerance tallies, and the write-ahead journal.
#[derive(Debug, Default)]
struct ShardState {
    health: ShardHealthState,
    retries: u64,
    backoff_s: f64,
    rebuilds: u64,
    journal: ShardJournal,
}

/// Newtype default so `ShardState::default()` starts Healthy.
#[derive(Debug)]
struct ShardHealthState(ShardHealth);

impl Default for ShardHealthState {
    fn default() -> Self {
        ShardHealthState(ShardHealth::Healthy)
    }
}

/// One-line health summary of a router's shards, renderable and
/// convertible into [`ShardHealthRow`]s for [`gpu_sim::TraceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouterReport {
    /// Per-shard health rows, in shard order.
    pub rows: Vec<ShardHealthRow>,
}

impl RouterReport {
    /// Shards not currently Healthy (the health-state analogue of
    /// [`FlushReport::incomplete_shards`]).
    pub fn unhealthy_shards(&self) -> Vec<usize> {
        self.rows
            .iter()
            .filter(|r| r.state != "healthy")
            .map(|r| r.shard as usize)
            .collect()
    }

    /// One-line summary, e.g.
    /// `router health: 3/4 healthy | shard 2: down (retries 3, backoff 0.350 ms, journal 42, rebuilds 0)`.
    pub fn render(&self) -> String {
        let healthy = self.rows.iter().filter(|r| r.state == "healthy").count();
        let mut line = format!("router health: {healthy}/{} healthy", self.rows.len());
        for r in self.rows.iter().filter(|r| r.state != "healthy") {
            line.push_str(&format!(
                " | shard {}: {} (retries {}, backoff {:.3} ms, journal {}, rebuilds {})",
                r.shard,
                r.state,
                r.retries,
                r.backoff_s * 1e3,
                r.journal_depth,
                r.rebuilds
            ));
        }
        line
    }
}

/// One client update. Sessions submit these; the router coalesces them
/// into per-shard batches at flush time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update {
    /// Insert one edge (weight carried through on map-kind shards).
    Insert(Edge),
    /// Delete one edge.
    Delete(Edge),
}

/// One queued client update, carrying the [`TraceCtx`] minted at
/// [`BatchRouter::submit`] and the modeled clock at submission (queue
/// latency is measured from here to the flush that drains it).
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    ctx: TraceCtx,
    update: Update,
    submitted_s: f64,
}

/// The reconstructed lifecycle of one client operation: its identity,
/// the flush that carried it, a latency breakdown on the modeled clock,
/// and the span chain (human-readable, in causal order). `total_ns` is
/// *defined* as the sum of the five components, and `tests/tracing.rs`
/// asserts the kernel component is conserved against the flush's actual
/// kernel time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTraceRecord {
    /// Router-wide op id (monotonic, minted at submit).
    pub op: u64,
    /// Submitting session, or [`TraceCtx::NO_SESSION`] for internal ops.
    pub session: u64,
    /// `"insert"`, `"delete"`, or `"query"`.
    pub kind: String,
    /// The flush sequence number that drained this op (0 for queries).
    pub flush: u64,
    /// Modeled ns spent queued between submit and flush drain.
    pub queue_ns: u64,
    /// Modeled ns spent in host-side coalescing. Always 0 today: the
    /// cost model charges device work only, and coalescing is host work.
    /// Kept in the schema so the breakdown is stable if that changes.
    pub coalesce_ns: u64,
    /// This op's share of retry backoff charged on its shards.
    pub backoff_ns: u64,
    /// This op's share of kernel time on its shards (rebuild replay
    /// folds in here, flagged by a `router.rebuild` span).
    pub kernel_ns: u64,
    /// Modeled ns answering this op from replicas while the owner was
    /// down (queries only).
    pub degraded_ns: u64,
    /// Causal span chain, e.g. `flush#3 queue 12 ns` then
    /// `shard1/dispatch kernel 40 ns backoff 0 ns`.
    pub spans: Vec<String>,
    /// Whether every shard this op routed to has completed it.
    pub done: bool,
}

impl OpTraceRecord {
    /// End-to-end modeled latency: the sum of the five components.
    pub fn total_ns(&self) -> u64 {
        self.queue_ns + self.coalesce_ns + self.backoff_ns + self.kernel_ns + self.degraded_ns
    }
}

/// One in-flight op: its record plus how many shard dispatches it still
/// waits on.
struct OpenOp {
    rec: OpTraceRecord,
    pending_shards: usize,
}

/// Completed-op ring capacity (matches the profiler's event rings).
const OPLOG_CAP: usize = 1 << 16;
/// Slowest-op exemplars kept with full span chains.
const TAIL_EXEMPLARS: usize = 8;

/// Router-side op bookkeeping: in-flight ops, which op ids each shard's
/// next successful dispatch will complete, the bounded completed-op
/// ring, and the K-slowest exemplar ring.
#[derive(Default)]
struct OpTracker {
    open: HashMap<u64, OpenOp>,
    /// Per shard: op ids charged by that shard's next completed
    /// dispatch (cleared on completion, kept across failed attempts).
    shard_waiting: Vec<Vec<u64>>,
    completed: VecDeque<OpTraceRecord>,
    exemplars: Vec<OpTraceRecord>,
    flushes: u64,
}

impl OpTracker {
    /// Move a finished record into the completed ring and the exemplar
    /// ring, folding its components into the router metrics.
    fn finalize(&mut self, mut rec: OpTraceRecord, metrics: &MetricsRegistry) {
        rec.done = true;
        metrics.record("op.total_ns", rec.total_ns());
        metrics.record("op.queue_ns", rec.queue_ns);
        metrics.record("op.coalesce_ns", rec.coalesce_ns);
        metrics.record("op.backoff_ns", rec.backoff_ns);
        metrics.record("op.kernel_ns", rec.kernel_ns);
        metrics.record("op.degraded_ns", rec.degraded_ns);
        self.exemplars.push(rec.clone());
        self.exemplars
            .sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.op.cmp(&b.op)));
        self.exemplars.truncate(TAIL_EXEMPLARS);
        self.completed.push_back(rec);
        if self.completed.len() > OPLOG_CAP {
            self.completed.pop_front();
        }
    }
}

/// Round modeled seconds to whole nanoseconds for attribution. The
/// modeled clock resolves sub-microsecond shares (one op's slice of a
/// coalesced dispatch is typically tens to hundreds of ns), so
/// nanoseconds keep the breakdown informative where whole µs would
/// round nearly every component to zero.
fn as_ns(s: f64) -> u64 {
    (s * 1e9).round() as u64
}

/// One shard's view of a flush: its batch outcomes, health, and modeled
/// time.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    pub shard: usize,
    /// Outcome of the shard's coalesced insert batch (primaries then
    /// replicas, session order preserved). `None` when the flush carried
    /// no inserts for this shard.
    pub insert: Option<BatchOutcome>,
    /// Outcome of the shard's coalesced delete batch.
    pub delete: Option<BatchOutcome>,
    /// Modeled GPU seconds this shard spent on the flush, *including*
    /// retry backoff charged on the modeled clock.
    pub modeled_s: f64,
    /// The retry-backoff portion of [`Self::modeled_s`] — kernel time is
    /// `modeled_s - backoff_s`. Latency attribution splits per-op shares
    /// along exactly this seam.
    pub backoff_s: f64,
    /// The shard's health after this dispatch.
    pub health: ShardHealth,
    /// Typed dispatch failure, if the batch (suffix) was not applied at
    /// all. Orthogonal to the recoverable OOM inside a partial
    /// [`BatchOutcome`].
    pub error: Option<RouterError>,
}

impl ShardOutcome {
    /// Whether every batch routed to this shard was fully applied.
    pub fn is_complete(&self) -> bool {
        self.error.is_none()
            && self.insert.as_ref().is_none_or(BatchOutcome::is_complete)
            && self.delete.as_ref().is_none_or(BatchOutcome::is_complete)
    }
}

/// What one [`BatchRouter::flush`] (or [`BatchRouter::recover`]) did.
#[derive(Debug, Clone)]
pub struct FlushReport {
    /// Updates drained from the session queues (0 for a recovery pass).
    pub updates: usize,
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
}

impl FlushReport {
    /// Whether every shard applied its batches fully.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(ShardOutcome::is_complete)
    }

    /// Shards with unapplied work (candidates for [`BatchRouter::recover`]).
    pub fn incomplete_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| !s.is_complete())
            .map(|s| s.shard)
            .collect()
    }

    /// The flush's modeled makespan: shards run concurrently, so this is
    /// the *maximum* per-shard modeled time, not the sum.
    pub fn modeled_s(&self) -> f64 {
        self.shards.iter().map(|s| s.modeled_s).fold(0.0, f64::max)
    }
}

/// Host-side async batch router over a [`ShardedGraph`]. Concurrent
/// sessions [`Self::submit`] updates; [`Self::flush`] coalesces and
/// dispatches them. See the crate docs for ordering semantics.
///
/// The router is also the graph's fault-tolerance layer: it write-ahead
/// journals every routed op, runs a per-shard health state machine
/// ([`ShardHealth`]) driven by launch-admission faults and a
/// [`RetryPolicy`], opens a circuit breaker on Down shards (no device
/// access at all while open), serves degraded reads from surviving
/// replicas, and rebuilds a Down shard from its journal
/// ([`Self::rebuild_downed`]).
pub struct BatchRouter<'g> {
    graph: &'g ShardedGraph,
    /// Per-session FIFO queues, indexed by session id. A `Mutex` (not a
    /// channel) so that draining is session-major — deterministic no
    /// matter how submission threads interleaved.
    sessions: Mutex<Vec<Vec<PendingOp>>>,
    policy: RetryPolicy,
    /// Op-id source for [`TraceCtx`] minting (monotonic from 1).
    next_op: AtomicU64,
    /// Per-op lifecycle bookkeeping (open ops, completed ring, tail
    /// exemplars).
    tracker: Mutex<OpTracker>,
    /// Router-level metrics (`op.*_ns` component histograms). Kept
    /// separate from the per-device registries so per-op attribution
    /// does not perturb the device-side metric sets.
    op_metrics: MetricsRegistry,
    /// Per-shard health + journal. Each dispatch closure locks only its
    /// own shard's state, so the per-shard mutexes never contend across
    /// shards.
    states: Vec<Mutex<ShardState>>,
    /// Lock-free mirror of each shard's dispatchability. A flush dispatch
    /// holds its shard's state mutex for the whole batch, so the read
    /// path consults this mirror instead — reads are *served during*
    /// in-flight flushes rather than fenced behind them.
    serving: Vec<AtomicBool>,
}

impl<'g> BatchRouter<'g> {
    pub fn new(graph: &'g ShardedGraph) -> Self {
        Self::with_policy(graph, RetryPolicy::default())
    }

    /// Build a router with an explicit [`RetryPolicy`]. Seeds each
    /// shard's journal checkpoint from the shard's *current* contents
    /// (primaries and replicas alike), so graphs assembled via
    /// [`ShardedGraph::bulk_build`] — which bypasses the router — are
    /// still rebuildable.
    pub fn with_policy(graph: &'g ShardedGraph, policy: RetryPolicy) -> Self {
        let n = graph.num_shards();
        let states = (0..n)
            .map(|s| {
                let mut st = ShardState::default();
                let g = graph.shard(s);
                let pin = g.pin_read();
                for u in 0..graph.vertex_capacity() {
                    for v in g.neighbor_ids(&pin, u) {
                        let w = g.edge_weight(&pin, u, v).unwrap_or(1);
                        st.journal.checkpoint.insert((u, v), w);
                    }
                }
                Mutex::new(st)
            })
            .collect();
        BatchRouter {
            graph,
            sessions: Mutex::new(Vec::new()),
            policy,
            next_op: AtomicU64::new(1),
            tracker: Mutex::new(OpTracker {
                shard_waiting: (0..n).map(|_| Vec::new()).collect(),
                ..OpTracker::default()
            }),
            op_metrics: MetricsRegistry::new(),
            states,
            serving: (0..n).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// The router's modeled clock: the group makespan (max of the
    /// per-shard profiler clocks). Queue latency is measured on it.
    fn clock_s(&self) -> f64 {
        self.graph.group().clock_s()
    }

    /// Enqueue one update for `session` and return the op id of the
    /// [`TraceCtx`] minted for it. Safe to call from any thread; order
    /// *within* a session is the caller's submission order.
    pub fn submit(&self, session: usize, update: Update) -> u64 {
        let op = self.next_op.fetch_add(1, Ordering::AcqRel);
        let pending = PendingOp {
            ctx: TraceCtx::root(session as u64, op),
            update,
            submitted_s: self.clock_s(),
        };
        let mut q = self.sessions.lock();
        if q.len() <= session {
            q.resize_with(session + 1, Vec::new);
        }
        q[session].push(pending);
        op
    }

    /// Updates currently queued across all sessions.
    pub fn queued(&self) -> usize {
        self.sessions.lock().iter().map(Vec::len).sum()
    }

    /// Current health of shard `s`.
    pub fn health(&self, s: usize) -> ShardHealth {
        self.states[s].lock().health.0
    }

    /// Shards whose health is anything other than Healthy (the
    /// health-state analogue of [`FlushReport::incomplete_shards`]).
    pub fn unhealthy_shards(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&s| self.health(s) != ShardHealth::Healthy)
            .collect()
    }

    /// Snapshot the per-shard health machine into a [`RouterReport`]
    /// whose rows slot directly into [`gpu_sim::TraceReport`].
    pub fn report(&self) -> RouterReport {
        let rows = (0..self.states.len())
            .map(|s| {
                let st = self.states[s].lock();
                ShardHealthRow {
                    shard: s as u64,
                    state: st.health.0.as_str().to_string(),
                    retries: st.retries,
                    backoff_s: st.backoff_s,
                    journal_depth: st.journal.depth() as u64,
                    rebuilds: st.rebuilds,
                }
            })
            .collect();
        RouterReport { rows }
    }

    /// Unacknowledged journal entries for shard `s` (held writes that a
    /// rebuild would replay).
    pub fn journal_depth(&self, s: usize) -> usize {
        self.states[s].lock().journal.depth()
    }

    /// Transition a shard's health, emitting a trace instant and a
    /// transition count so the path is visible in the profiler timeline.
    fn set_health(&self, st: &mut ShardState, s: usize, to: ShardHealth) {
        let from = st.health.0;
        if from == to {
            return;
        }
        st.health.0 = to;
        self.serving[s].store(to.is_dispatchable(), Ordering::Release);
        if let Some(p) = self.graph.group().device(s).profiler() {
            p.instant("shard_health", format!("shard {s}: {from} -> {to}"));
            p.metrics().record("router.health_transitions", 1);
        }
    }

    /// Launch-admission gate with bounded retry. Charges exponential
    /// backoff on the modeled clock between attempts and drives the
    /// health machine; returns the accumulated backoff seconds, or the
    /// final fault (with the backoff spent getting there) after marking
    /// the shard Down.
    fn admit(
        &self,
        st: &mut ShardState,
        s: usize,
        dev: &Device,
    ) -> Result<f64, (f64, DeviceFault)> {
        let mut backoff = 0.0;
        let mut attempt = 0u32;
        loop {
            match dev.launch_check() {
                Ok(()) => {
                    if attempt > 0 {
                        // Recovered within the retry budget.
                        self.set_health(st, s, ShardHealth::Healthy);
                    }
                    return Ok(backoff);
                }
                Err(fault) => {
                    self.set_health(st, s, ShardHealth::Suspect);
                    if fault.is_terminal() || attempt >= self.policy.max_retries {
                        self.set_health(st, s, ShardHealth::Down);
                        return Err((backoff, fault));
                    }
                    let wait = self.policy.backoff_s(attempt);
                    st.retries += 1;
                    st.backoff_s += wait;
                    backoff += wait;
                    if let Some(p) = dev.profiler() {
                        p.charge_wait("router.backoff", wait);
                        p.metrics()
                            .record("router.retry_backoff_us", (wait * 1e6) as u64);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Drain every session queue (session-major, submission order within a
    /// session), coalesce into one insert batch and one delete batch per
    /// shard — primaries and cut-edge replicas included — journal every
    /// routed op, and dispatch all shards concurrently. Within a flush,
    /// inserts apply before deletes.
    ///
    /// Each shard uses the fallible batch path: a shard that exhausts its
    /// device budget reports a partial [`BatchOutcome`] carrying the
    /// unapplied suffix, while the other shards proceed to completion.
    /// A shard whose device refuses launch admission is retried per the
    /// [`RetryPolicy`] (backoff charged on the modeled clock) and, once
    /// exhausted, marked Down: its batches stay journaled and pending,
    /// its [`ShardOutcome::error`] carries the fault, and subsequent
    /// flushes skip it entirely (open circuit breaker — zero device
    /// access) until [`Self::rebuild_downed`] re-admits it.
    pub fn flush(&self) -> FlushReport {
        let drained: Vec<Vec<PendingOp>> = std::mem::take(&mut *self.sessions.lock());
        let updates: usize = drained.iter().map(Vec::len).sum();
        let n = self.graph.num_shards();
        let drain_s = self.clock_s();
        let mut inserts: Vec<Edge> = Vec::new();
        let mut deletes: Vec<Edge> = Vec::new();
        // Causal bookkeeping for the drain: open one lifecycle record
        // per op, register it with every shard its edge routes to, and
        // remember the first op routed to each shard — that op's ctx
        // stamps the shard's dispatch spans, so every charged span
        // chains back to a client op.
        let mut rep_ctx: Vec<Option<TraceCtx>> = vec![None; n];
        {
            let mut t = self.tracker.lock();
            t.flushes += 1;
            let flush_id = t.flushes;
            for session in &drained {
                for p in session {
                    let (kind, e) = match p.update {
                        Update::Insert(e) => ("insert", e),
                        Update::Delete(e) => ("delete", e),
                    };
                    let su = self.graph.owner_of(e.src);
                    let sv = self.graph.owner_of(e.dst);
                    let queue_ns = as_ns((drain_s - p.submitted_s).max(0.0));
                    let mut shards_touched = 1;
                    t.shard_waiting[su].push(p.ctx.op);
                    if rep_ctx[su].is_none() {
                        rep_ctx[su] = Some(p.ctx);
                    }
                    if sv != su {
                        shards_touched = 2;
                        t.shard_waiting[sv].push(p.ctx.op);
                        if rep_ctx[sv].is_none() {
                            rep_ctx[sv] = Some(p.ctx);
                        }
                    }
                    t.open.insert(
                        p.ctx.op,
                        OpenOp {
                            rec: OpTraceRecord {
                                op: p.ctx.op,
                                session: p.ctx.session,
                                kind: kind.to_string(),
                                flush: flush_id,
                                queue_ns,
                                coalesce_ns: 0,
                                backoff_ns: 0,
                                kernel_ns: 0,
                                degraded_ns: 0,
                                spans: vec![format!("flush#{flush_id} queue {queue_ns} ns")],
                                done: false,
                            },
                            pending_shards: shards_touched,
                        },
                    );
                }
            }
        }
        for session in &drained {
            for p in session {
                match p.update {
                    Update::Insert(e) => inserts.push(e),
                    Update::Delete(e) => deletes.push(e),
                }
            }
        }
        let ins_parts = self.graph.partition(&inserts);
        let del_parts = self.graph.partition(&deletes);
        // Per shard: one coalesced insert batch (primaries first, then
        // replicas — retry order must match apply order), one delete batch.
        let ins_batches: Vec<Vec<Edge>> = (0..n)
            .map(|s| {
                let mut b = ins_parts.primary[s].clone();
                b.extend_from_slice(&ins_parts.replica[s]);
                b
            })
            .collect();
        let del_batches: Vec<Vec<Edge>> = (0..n)
            .map(|s| {
                let mut b = del_parts.primary[s].clone();
                b.extend_from_slice(&del_parts.replica[s]);
                b
            })
            .collect();
        // Write-ahead: journal every routed op before any dispatch, so a
        // shard that dies mid-flush can be rebuilt without losing writes.
        for s in 0..n {
            let mut st = self.states[s].lock();
            for &e in &ins_batches[s] {
                st.journal.append(JournalOp::Insert(e));
            }
            for &e in &del_batches[s] {
                st.journal.append(JournalOp::Delete(e));
            }
            let depth = st.journal.depth() as u64;
            if let Some(p) = self.graph.group().device(s).profiler() {
                p.metrics().gauge("router.journal_depth").set(depth);
            }
        }
        let model = CostModel::titan_v();
        let shards = self.graph.group().dispatch(|s, dev| {
            let ins = &ins_batches[s];
            let del = &del_batches[s];
            if ins.is_empty() && del.is_empty() {
                // No work: no launch admission consumed, so fault plans
                // keyed on launch index stay deterministic w.r.t. work.
                return ShardOutcome {
                    shard: s,
                    insert: None,
                    delete: None,
                    modeled_s: 0.0,
                    backoff_s: 0.0,
                    health: self.health(s),
                    error: None,
                };
            }
            // Stamp everything this dispatch records — kernel spans,
            // backoff waits, health instants — with the first client
            // op routed here, so the merged trace chains back to
            // client traffic.
            let ctx = rep_ctx[s].unwrap_or_else(|| self.graph.dispatch_ctx());
            let _trace = dev.trace_scope(ctx);
            let mut st = self.states[s].lock();
            if !st.health.0.is_dispatchable() {
                // Circuit breaker open: hold the batches (already
                // journaled) without touching the device at all.
                return ShardOutcome {
                    shard: s,
                    insert: (!ins.is_empty())
                        .then(|| held_outcome(slabgraph::BatchOp::InsertEdges, ins)),
                    delete: (!del.is_empty())
                        .then(|| held_outcome(slabgraph::BatchOp::DeleteEdges, del)),
                    modeled_s: 0.0,
                    backoff_s: 0.0,
                    health: st.health.0,
                    error: None,
                };
            }
            let backoff = match self.admit(&mut st, s, dev) {
                Ok(b) => b,
                Err((b, fault)) => {
                    return ShardOutcome {
                        shard: s,
                        insert: (!ins.is_empty())
                            .then(|| held_outcome(slabgraph::BatchOp::InsertEdges, ins)),
                        delete: (!del.is_empty())
                            .then(|| held_outcome(slabgraph::BatchOp::DeleteEdges, del)),
                        modeled_s: b,
                        backoff_s: b,
                        health: st.health.0,
                        error: Some(RouterError::Fault {
                            shard: s,
                            source: fault,
                        }),
                    };
                }
            };
            let g = self.graph.shard(s);
            let before = dev.counters().snapshot();
            let _phase = dev.phase("router.flush");
            let insert = match (!ins.is_empty())
                .then(|| g.try_insert_edges(ins))
                .transpose()
            {
                Ok(o) => o,
                Err(e) => {
                    drop(_phase);
                    let delta = dev.counters().snapshot().delta(&before);
                    return ShardOutcome {
                        shard: s,
                        insert: Some(held_outcome(slabgraph::BatchOp::InsertEdges, ins)),
                        delete: (!del.is_empty())
                            .then(|| held_outcome(slabgraph::BatchOp::DeleteEdges, del)),
                        modeled_s: model.seconds(&delta) + backoff,
                        backoff_s: backoff,
                        health: st.health.0,
                        error: Some(RouterError::Poisoned {
                            shard: s,
                            source: e,
                        }),
                    };
                }
            };
            let delete = if del.is_empty() {
                None
            } else if insert.as_ref().is_none_or(|o| o.is_complete()) {
                match g.try_delete_edges(del) {
                    Ok(o) => Some(o),
                    Err(e) => {
                        drop(_phase);
                        let delta = dev.counters().snapshot().delta(&before);
                        return ShardOutcome {
                            shard: s,
                            insert,
                            delete: Some(held_outcome(slabgraph::BatchOp::DeleteEdges, del)),
                            modeled_s: model.seconds(&delta) + backoff,
                            backoff_s: backoff,
                            health: st.health.0,
                            error: Some(RouterError::Poisoned {
                                shard: s,
                                source: e,
                            }),
                        };
                    }
                }
            } else {
                // The shard is out of memory mid-insert: hold the deletes
                // as fully-pending so recovery preserves apply order.
                Some(held_outcome(slabgraph::BatchOp::DeleteEdges, del))
            };
            drop(_phase);
            let delta = dev.counters().snapshot().delta(&before);
            // A clean dispatch heals a Suspect shard.
            self.set_health(&mut st, s, ShardHealth::Healthy);
            ShardOutcome {
                shard: s,
                insert,
                delete,
                modeled_s: model.seconds(&delta) + backoff,
                backoff_s: backoff,
                health: st.health.0,
                error: None,
            }
        });
        self.ack_completed(&shards);
        self.attribute_outcomes(&shards);
        FlushReport { updates, shards }
    }

    /// Fold one dispatch round's per-shard outcomes into the open op
    /// records: each shard's kernel and backoff time is split evenly
    /// across the ops waiting on it. A *completed* shard dispatch
    /// settles its waiters (mirroring [`Self::ack_completed`]'s journal
    /// truncation); a failed or held attempt charges the backoff it
    /// actually spent and keeps the ops open for recovery or rebuild.
    fn attribute_outcomes(&self, shards: &[ShardOutcome]) {
        let mut t = self.tracker.lock();
        for o in shards {
            let waiting = t.shard_waiting[o.shard].len();
            if waiting == 0 {
                continue;
            }
            let kernel_share = as_ns((o.modeled_s - o.backoff_s).max(0.0) / waiting as f64);
            let backoff_share = as_ns(o.backoff_s / waiting as f64);
            let settled = o.is_complete() && (o.insert.is_some() || o.delete.is_some());
            if !settled && kernel_share == 0 && backoff_share == 0 {
                continue;
            }
            let ids: Vec<u64> = if settled {
                std::mem::take(&mut t.shard_waiting[o.shard])
            } else {
                t.shard_waiting[o.shard].clone()
            };
            for id in ids {
                let Some(open) = t.open.get_mut(&id) else {
                    continue;
                };
                open.rec.kernel_ns += kernel_share;
                open.rec.backoff_ns += backoff_share;
                if settled {
                    open.rec.spans.push(format!(
                        "shard{}/dispatch kernel {kernel_share} ns backoff {backoff_share} ns",
                        o.shard
                    ));
                    open.pending_shards = open.pending_shards.saturating_sub(1);
                    if open.pending_shards == 0 {
                        let open = t.open.remove(&id).expect("open op present");
                        t.finalize(open.rec, &self.op_metrics);
                    }
                } else {
                    open.rec.spans.push(format!(
                        "shard{}/retry kernel {kernel_share} ns backoff {backoff_share} ns",
                        o.shard
                    ));
                }
            }
        }
    }

    /// Resume the pending suffixes of an incomplete flush — call after
    /// raising the failing shard's budget
    /// ([`gpu_sim::Device::set_capacity_words`]) or clearing its fault
    /// plan. Only incomplete shards re-run (concurrently); complete shards
    /// are carried over untouched. The returned report may itself be
    /// partial, in which case recovery can be repeated.
    ///
    /// A Down shard is *not* retried here (its breaker is open); its held
    /// outcome is carried forward. Use [`Self::rebuild_downed`] instead —
    /// and note that a rebuild replays the journaled ops itself, which
    /// makes reports holding that shard's pending work stale.
    pub fn recover(&self, report: &FlushReport) -> FlushReport {
        let model = CostModel::titan_v();
        // Re-dispatched suffixes stay causally attributed to the ops
        // still waiting on each shard.
        let rep_ctx: Vec<Option<TraceCtx>> = {
            let t = self.tracker.lock();
            (0..self.graph.num_shards())
                .map(|s| {
                    t.shard_waiting[s]
                        .first()
                        .and_then(|id| t.open.get(id))
                        .map(|o| TraceCtx::root(o.rec.session, o.rec.op))
                })
                .collect()
        };
        let shards = self.graph.group().dispatch(|s, dev| {
            let prior = &report.shards[s];
            if prior.is_complete() {
                return prior.clone();
            }
            let ctx = rep_ctx[s].unwrap_or_else(|| self.graph.dispatch_ctx());
            let _trace = dev.trace_scope(ctx);
            let mut st = self.states[s].lock();
            if !st.health.0.is_dispatchable() {
                // Circuit breaker open: carry the held outcome forward
                // without touching the device.
                let mut held = prior.clone();
                held.health = st.health.0;
                held.modeled_s = 0.0;
                held.backoff_s = 0.0;
                return held;
            }
            let backoff = match self.admit(&mut st, s, dev) {
                Ok(b) => b,
                Err((b, fault)) => {
                    let mut held = prior.clone();
                    held.health = st.health.0;
                    held.modeled_s = b;
                    held.backoff_s = b;
                    held.error = Some(RouterError::Fault {
                        shard: s,
                        source: fault,
                    });
                    return held;
                }
            };
            let g = self.graph.shard(s);
            let before = dev.counters().snapshot();
            let _phase = dev.phase("router.recover");
            let retry = |o: &Option<BatchOutcome>| -> Result<Option<BatchOutcome>, GraphError> {
                o.as_ref()
                    .map(|o| {
                        if o.is_complete() {
                            Ok(o.clone())
                        } else {
                            let mut next = g.retry_suffix(o)?;
                            // Fold the already-applied prefix into the resumed
                            // outcome so counts stay cumulative for the flush.
                            next.attempted = o.attempted;
                            next.completed += o.completed;
                            next.changed += o.changed;
                            Ok(next)
                        }
                    })
                    .transpose()
            };
            let poisoned = |e: GraphError, dev: &Device, before| {
                let delta = dev.counters().snapshot().delta(&before);
                let mut held = prior.clone();
                held.modeled_s = model.seconds(&delta) + backoff;
                held.backoff_s = backoff;
                held.error = Some(RouterError::Poisoned {
                    shard: s,
                    source: e,
                });
                held
            };
            let insert = match retry(&prior.insert) {
                Ok(o) => o,
                Err(e) => {
                    drop(_phase);
                    let mut held = poisoned(e, dev, before);
                    held.health = st.health.0;
                    return held;
                }
            };
            let delete = if insert.as_ref().is_none_or(|o| o.is_complete()) {
                match retry(&prior.delete) {
                    Ok(o) => o,
                    Err(e) => {
                        drop(_phase);
                        let mut held = poisoned(e, dev, before);
                        held.insert = insert;
                        held.health = st.health.0;
                        return held;
                    }
                }
            } else {
                prior.delete.clone()
            };
            drop(_phase);
            let delta = dev.counters().snapshot().delta(&before);
            self.set_health(&mut st, s, ShardHealth::Healthy);
            ShardOutcome {
                shard: s,
                insert,
                delete,
                modeled_s: model.seconds(&delta) + backoff,
                backoff_s: backoff,
                health: st.health.0,
                error: None,
            }
        });
        self.ack_completed(&shards);
        self.attribute_outcomes(&shards);
        FlushReport { updates: 0, shards }
    }

    /// Truncate the journal of every shard whose dispatch fully applied:
    /// the acked log folds into the checkpoint, so journal depth tracks
    /// in-flight work rather than history.
    fn ack_completed(&self, shards: &[ShardOutcome]) {
        for o in shards {
            if o.is_complete() && (o.insert.is_some() || o.delete.is_some()) {
                let mut st = self.states[o.shard].lock();
                st.journal.ack_all();
                if let Some(p) = self.graph.group().device(o.shard).profiler() {
                    p.metrics()
                        .gauge("router.journal_depth")
                        .set(st.journal.depth() as u64);
                }
            }
        }
    }

    /// Rebuild every Down shard from its journal: reset the device
    /// ([`gpu_sim::Device::reset`] clears the lost latch and fault
    /// plans), replay the checkpoint plus the unacknowledged log into a
    /// fresh shard, audit the whole sharded graph with
    /// [`ShardedGraph::validate`], and only then re-admit the shard as
    /// Healthy. Returns the rebuilt shard ids.
    ///
    /// If the audit fails, no rebuilt shard is re-admitted (they stay in
    /// `Rebuilding`) and the audit error is returned.
    ///
    /// After a rebuild, `FlushReport`s holding pending work for that
    /// shard are stale — the rebuild already replayed those journaled
    /// ops; do not [`Self::recover`] them.
    pub fn rebuild_downed(&self) -> Result<Vec<usize>, ShardedValidationError> {
        let n = self.graph.num_shards();
        let mut replayed: Vec<(usize, Option<f64>)> = Vec::new();
        for s in 0..n {
            {
                let mut st = self.states[s].lock();
                if st.health.0 != ShardHealth::Down {
                    continue;
                }
                self.set_health(&mut st, s, ShardHealth::Rebuilding);
            }
            let dev = self.graph.group().device(s).clone();
            // Replay spans chain to the first op still waiting on this
            // shard — the op whose write the rebuild is recovering.
            let ctx = {
                let t = self.tracker.lock();
                t.shard_waiting[s]
                    .first()
                    .and_then(|id| t.open.get(id))
                    .map(|o| TraceCtx::root(o.rec.session, o.rec.op))
                    .unwrap_or_else(|| self.graph.dispatch_ctx())
            };
            let _trace = dev.trace_scope(ctx);
            let t0 = dev.profiler().map(|p| p.now_s());
            // Snapshot the replay image, then release the state lock for
            // the device-side replay (degraded reads stay responsive).
            let (mut base, log) = {
                let st = self.states[s].lock();
                let base: Vec<Edge> = st
                    .journal
                    .checkpoint
                    .iter()
                    .map(|(&(u, v), &w)| Edge::weighted(u, v, w))
                    .collect();
                (base, st.journal.log.clone())
            };
            // The checkpoint is a map; sort for a deterministic replay.
            base.sort_unstable_by_key(|e| (e.src, e.dst));
            self.graph.reset_shard(s);
            {
                let g = self.graph.shard(s);
                let _phase = dev.phase("router.rebuild");
                if !base.is_empty() {
                    g.insert_edges(&base);
                }
                // Replay the unacked log in order, batching runs of the
                // same op kind. Replay is idempotent: re-inserting an
                // edge replaces its weight, re-deleting is a no-op.
                let mut i = 0;
                while i < log.len() {
                    let is_insert = matches!(log[i], JournalOp::Insert(_));
                    let mut run: Vec<Edge> = Vec::new();
                    while i < log.len() && matches!(log[i], JournalOp::Insert(_)) == is_insert {
                        run.push(match log[i] {
                            JournalOp::Insert(e) | JournalOp::Delete(e) => e,
                        });
                        i += 1;
                    }
                    if is_insert {
                        g.insert_edges(&run);
                    } else {
                        g.delete_edges(&run);
                    }
                }
            }
            let dur = t0.and_then(|t0| dev.profiler().map(|p| p.now_s() - t0));
            replayed.push((s, dur));
        }
        if replayed.is_empty() {
            return Ok(Vec::new());
        }
        // Cross-shard audit before re-admitting anything: a rebuild that
        // fails the audit leaves its shard un-admitted in Rebuilding.
        self.graph.validate()?;
        let mut rebuilt = Vec::new();
        for (s, dur) in replayed {
            let mut st = self.states[s].lock();
            st.journal.ack_all();
            st.rebuilds += 1;
            self.set_health(&mut st, s, ShardHealth::Healthy);
            if let Some(p) = self.graph.group().device(s).profiler() {
                p.metrics().gauge("router.journal_depth").set(0);
                if let Some(d) = dur {
                    p.metrics().record("router.rebuild_us", (d * 1e6) as u64);
                }
                p.instant("shard_rebuilt", format!("shard {s}"));
            }
            // The replay applied every journaled op this shard was
            // holding: settle the waiting lifecycles, charging each an
            // even share of the rebuild as kernel time.
            {
                let mut t = self.tracker.lock();
                let ids = std::mem::take(&mut t.shard_waiting[s]);
                if !ids.is_empty() {
                    let share = as_ns(dur.unwrap_or(0.0) / ids.len() as f64);
                    for id in ids {
                        let Some(open) = t.open.get_mut(&id) else {
                            continue;
                        };
                        open.rec.kernel_ns += share;
                        open.rec
                            .spans
                            .push(format!("shard{s}/router.rebuild {share} ns"));
                        open.pending_shards = open.pending_shards.saturating_sub(1);
                        if open.pending_shards == 0 {
                            let open = t.open.remove(&id).expect("open op present");
                            t.finalize(open.rec, &self.op_metrics);
                        }
                    }
                }
            }
            rebuilt.push(s);
        }
        Ok(rebuilt)
    }

    /// Point membership lookup that stays available while shards are
    /// Down. The owner answers exactly; with the owner Down, a cut
    /// edge's replica on the destination's owner answers (the replica is
    /// kept under the same `u→v` key, so it is authoritative for that
    /// edge), tagged [`ReadQuality::Degraded`]. A shard-internal edge of
    /// a Down owner is unanswerable and reports best-effort absence.
    pub fn edge_exists_degraded(&self, src: u32, dst: u32) -> (bool, ReadQuality) {
        let owner = self.graph.owner_of(src);
        if self.is_serving(owner) {
            let g = self.graph.shard(owner);
            return (g.edge_exists(&g.pin_read(), src, dst), ReadQuality::Exact);
        }
        let replica = self.graph.owner_of(dst);
        if replica != owner && self.is_serving(replica) {
            let g = self.graph.shard(replica);
            return (
                g.edge_exists(&g.pin_read(), src, dst),
                ReadQuality::Degraded,
            );
        }
        (false, ReadQuality::Degraded)
    }

    /// Out-degree that stays available while shards are Down. With the
    /// owner Down, surviving shards hold exactly `u`'s cut out-edges as
    /// replicas; their sum undercounts by `u`'s shard-internal edges and
    /// is tagged [`ReadQuality::Degraded`].
    pub fn degree_degraded(&self, u: u32) -> (u32, ReadQuality) {
        let owner = self.graph.owner_of(u);
        if self.is_serving(owner) {
            return (self.graph.degree(u), ReadQuality::Exact);
        }
        let mut d = 0;
        for t in 0..self.graph.num_shards() {
            if t != owner && self.is_serving(t) {
                d += self.graph.shard(t).degree(u);
            }
        }
        (d, ReadQuality::Degraded)
    }

    /// Whether shard `s` currently serves dispatches and exact reads.
    /// Reads the lock-free health mirror, never the state mutex: a flush
    /// dispatch holds the mutex for its whole batch, and reads must not
    /// fence behind it.
    fn is_serving(&self, s: usize) -> bool {
        self.serving[s].load(Ordering::Acquire)
    }

    /// Pin every serving shard for a read session that runs concurrently
    /// with in-flight [`Self::flush`]es. Shards that are Down or
    /// Rebuilding at pin time get no guard; reads routed to them degrade
    /// exactly like [`Self::edge_exists_degraded`]. Nothing on this path
    /// touches the per-shard state mutex, so a flush mid-dispatch never
    /// blocks a pinned read (and vice versa).
    pub fn pin_read(&self) -> LiveReadPin {
        let guards = (0..self.graph.num_shards())
            .map(|s| self.is_serving(s).then(|| self.graph.shard(s).pin_read()))
            .collect();
        LiveReadPin { guards }
    }

    /// Run `query` on shard `s` under its pinned guard. `None` when the
    /// shard holds no guard (it was not serving at pin time), has since
    /// stopped serving, or was reset since the pin — a rebuilt shard's
    /// fresh allocator no longer owns the guard, so the guard cannot
    /// block its reclamation and the read would be unprotected.
    fn pinned_query<T>(
        &self,
        pin: &LiveReadPin,
        s: usize,
        query: impl FnOnce(&DynGraph, &ReadGuard) -> T,
    ) -> Option<T> {
        let guard = pin.guards.get(s)?.as_ref()?;
        if !self.is_serving(s) {
            return None;
        }
        let g = self.graph.shard(s);
        if !g.allocator().owns_guard(guard) {
            return None;
        }
        Some(query(&g, guard))
    }

    /// Point membership that runs concurrently with in-flight flushes
    /// *and* stays available while shards are Down: the owner answers
    /// exactly under its pinned era; with the owner unavailable (or its
    /// pin staled by a rebuild) a cut edge's replica answers, tagged
    /// [`ReadQuality::Degraded`] — the epoch pins compose with the
    /// degraded-read protocol rather than replacing it.
    pub fn edge_exists_live(&self, pin: &LiveReadPin, src: u32, dst: u32) -> (bool, ReadQuality) {
        let owner = self.graph.owner_of(src);
        if let Some(hit) = self.pinned_query(pin, owner, |g, p| g.edge_exists(p, src, dst)) {
            return (hit, ReadQuality::Exact);
        }
        let replica = self.graph.owner_of(dst);
        if replica != owner {
            if let Some(hit) = self.pinned_query(pin, replica, |g, p| g.edge_exists(p, src, dst)) {
                return (hit, ReadQuality::Degraded);
            }
        }
        (false, ReadQuality::Degraded)
    }

    /// `u`'s neighbours under the pinned session. Owner serving → exact;
    /// otherwise the union of surviving cut-edge replicas, degraded
    /// (undercounts by `u`'s shard-internal edges, like
    /// [`Self::degree_degraded`]).
    pub fn neighbor_ids_live(&self, pin: &LiveReadPin, u: u32) -> (Vec<u32>, ReadQuality) {
        let owner = self.graph.owner_of(u);
        if let Some(n) = self.pinned_query(pin, owner, |g, p| g.neighbor_ids(p, u)) {
            return (n, ReadQuality::Exact);
        }
        let mut out = Vec::new();
        for s in 0..self.graph.num_shards() {
            if s != owner {
                if let Some(mut n) = self.pinned_query(pin, s, |g, p| g.neighbor_ids(p, u)) {
                    out.append(&mut n);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        (out, ReadQuality::Degraded)
    }

    /// Out-degree under the pinned session: exact from the owner, else
    /// the sum of surviving replica degrees, degraded.
    pub fn degree_live(&self, pin: &LiveReadPin, u: u32) -> (u32, ReadQuality) {
        let owner = self.graph.owner_of(u);
        if let Some(d) = self.pinned_query(pin, owner, |g, _| g.degree(u)) {
            return (d, ReadQuality::Exact);
        }
        let mut d = 0;
        for s in 0..self.graph.num_shards() {
            if s != owner {
                if let Some(x) = self.pinned_query(pin, s, |g, _| g.degree(u)) {
                    d += x;
                }
            }
        }
        (d, ReadQuality::Degraded)
    }

    /// Point membership with full lifecycle tracing: mints a client op,
    /// stamps the answering shard's query spans with its [`TraceCtx`],
    /// measures the modeled cost of the read, and folds a completed
    /// `"query"` lifecycle into the op log — charged to the `kernel`
    /// component when the owner answered exactly, to `degraded` when a
    /// replica (or nobody) answered while the owner was down.
    pub fn edge_exists_traced(&self, session: usize, src: u32, dst: u32) -> (bool, ReadQuality) {
        let op = self.next_op.fetch_add(1, Ordering::AcqRel);
        let ctx = TraceCtx::root(session as u64, op);
        let model = CostModel::titan_v();
        let read_on = |s: usize| -> (bool, f64) {
            let dev = self.graph.group().device(s);
            let _trace = dev.trace_scope(ctx);
            let before = dev.counters().snapshot();
            let g = self.graph.shard(s);
            let hit = g.edge_exists(&g.pin_read(), src, dst);
            (
                hit,
                model.seconds(&dev.counters().snapshot().delta(&before)),
            )
        };
        let owner = self.graph.owner_of(src);
        let (hit, quality, cost_s, answered) = if self.is_serving(owner) {
            let (hit, c) = read_on(owner);
            (hit, ReadQuality::Exact, c, Some(owner))
        } else {
            let replica = self.graph.owner_of(dst);
            if replica != owner && self.is_serving(replica) {
                let (hit, c) = read_on(replica);
                (hit, ReadQuality::Degraded, c, Some(replica))
            } else {
                (false, ReadQuality::Degraded, 0.0, None)
            }
        };
        let cost_ns = as_ns(cost_s);
        let (kernel_ns, degraded_ns) = match quality {
            ReadQuality::Exact => (cost_ns, 0),
            ReadQuality::Degraded => (0, cost_ns),
        };
        let span = match answered {
            Some(s) => {
                let q = if quality == ReadQuality::Exact {
                    "exact"
                } else {
                    "degraded"
                };
                format!("shard{s}/edge_exists {cost_ns} ns ({q})")
            }
            None => "unanswerable (owner down, no replica)".to_string(),
        };
        let rec = OpTraceRecord {
            op,
            session: session as u64,
            kind: "query".to_string(),
            flush: 0,
            queue_ns: 0,
            coalesce_ns: 0,
            backoff_ns: 0,
            kernel_ns,
            degraded_ns,
            spans: vec![span],
            done: false,
        };
        self.tracker.lock().finalize(rec, &self.op_metrics);
        (hit, quality)
    }

    /// Completed op lifecycles, oldest first (bounded ring).
    pub fn op_records(&self) -> Vec<OpTraceRecord> {
        self.tracker.lock().completed.iter().cloned().collect()
    }

    /// The slowest completed ops by total modeled latency, slowest
    /// first, full span chains retained (a bounded ring of eight —
    /// the "tail exemplars" report section).
    pub fn tail_exemplars(&self) -> Vec<OpTraceRecord> {
        self.tracker.lock().exemplars.clone()
    }

    /// Router-level metric summaries: the per-component `op.*_ns`
    /// latency histograms.
    pub fn op_metric_summaries(&self) -> Vec<MetricSummary> {
        self.op_metrics.summaries()
    }

    /// One merged [`TraceReport`] for the whole router: the group's
    /// kernels, findings, and metrics, plus shard health, per-component
    /// op-latency attribution (p50/p95/p99), and the tail-exemplar
    /// ring. Round-trips through JSON exactly like any other report.
    pub fn trace_report(&self, model: &CostModel) -> TraceReport {
        let attribution: Vec<OpAttributionRow> = [
            "queue", "coalesce", "backoff", "kernel", "degraded", "total",
        ]
        .iter()
        .map(|c| {
            let name = format!("op.{c}_ns");
            let m = self.op_metrics.histogram(&name).snapshot().summary(name);
            OpAttributionRow {
                component: (*c).to_string(),
                count: m.count,
                sum_ns: m.sum,
                max_ns: m.max,
                p50_ns: m.p50,
                p95_ns: m.p95,
                p99_ns: m.p99,
            }
        })
        .collect();
        let exemplars: Vec<TailExemplarRow> = self
            .tracker
            .lock()
            .exemplars
            .iter()
            .map(|r| TailExemplarRow {
                op: r.op,
                session: r.session,
                kind: r.kind.clone(),
                total_ns: r.total_ns(),
                queue_ns: r.queue_ns,
                coalesce_ns: r.coalesce_ns,
                backoff_ns: r.backoff_ns,
                kernel_ns: r.kernel_ns,
                degraded_ns: r.degraded_ns,
                spans: r.spans.clone(),
            })
            .collect();
        let mut report = self
            .graph
            .group()
            .merged_report(model)
            .with_shard_health(self.report().rows);
        let mut metrics = std::mem::take(&mut report.metrics);
        metrics.extend(self.op_metrics.summaries());
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        report
            .with_metrics(metrics)
            .with_op_attribution(attribution)
            .with_tail_exemplars(exemplars)
    }
}

/// An era-pinned read session over a [`BatchRouter`]'s serving shards,
/// from [`BatchRouter::pin_read`]. One guard per shard (`None` for shards
/// not serving at pin time). A shard rebuilt while the pin is held stales
/// its guard — subsequent `*_live` reads routed there degrade until a
/// fresh pin is taken.
#[must_use = "reads are only pinned while the session is held"]
pub struct LiveReadPin {
    guards: Vec<Option<ReadGuard>>,
}

impl LiveReadPin {
    /// How many shards this session actually pinned.
    pub fn pinned_shards(&self) -> usize {
        self.guards.iter().flatten().count()
    }
}

/// A fully-pending [`BatchOutcome`] for a batch the router held back
/// (circuit breaker open or apply-order barrier) without touching the
/// device.
fn held_outcome(op: slabgraph::BatchOp, batch: &[Edge]) -> BatchOutcome {
    BatchOutcome {
        op,
        attempted: batch.len(),
        completed: 0,
        changed: 0,
        pending: batch.to_vec(),
        pending_vertices: Vec::new(),
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backend::GraphBackend;
    use gpu_sim::FaultPlan;

    fn cfg(n_vertices: u32) -> GraphConfig {
        GraphConfig::directed_map(n_vertices)
            .with_device_words(1 << 18)
            .with_pool_slabs(1 << 8)
    }

    fn pairs(n: usize, seed: u64, n_vertices: u32) -> Vec<(u32, u32)> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|_| {
                let u = (next() % n_vertices as u64) as u32;
                let mut v = (next() % n_vertices as u64) as u32;
                if v == u {
                    v = (v + 1) % n_vertices;
                }
                (u, v)
            })
            .collect()
    }

    #[test]
    fn shard_of_is_balanced_and_stable() {
        let mut counts = [0usize; 4];
        for v in 0..4000u32 {
            counts[shard_of(v, 4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "unbalanced: {counts:?}");
        }
        assert_eq!(shard_of(42, 1), 0);
        assert_eq!(shard_of(42, 4), shard_of(42, 4));
    }

    #[test]
    fn sharded_matches_unsharded_queries() {
        let n_vertices = 256;
        let edges: Vec<Edge> = pairs(400, 7, n_vertices)
            .into_iter()
            .map(Edge::from)
            .collect();
        let reference = DynGraph::new(cfg(n_vertices));
        reference.insert_edges(&edges);
        for shards in [1, 2, 4] {
            let g = ShardedGraph::bulk_build(shards, cfg(n_vertices), &edges);
            assert_eq!(g.num_edges(), reference.num_edges(), "{shards} shards");
            let qry = pairs(300, 99, n_vertices);
            let ref_pin = reference.pin_read();
            assert_eq!(g.edges_exist(&qry), reference.edges_exist(&ref_pin, &qry));
            // Explicit per-shard pins answer identically to per-call pins.
            let pins = g.pin_read();
            assert_eq!(pins.len(), shards);
            assert_eq!(
                g.edges_exist_pinned(&pins, &qry),
                reference.edges_exist(&ref_pin, &qry)
            );
            for v in 0..n_vertices {
                assert_eq!(g.degree(v), reference.degree(v), "degree({v})");
                let mut a = g.neighbor_ids(v);
                let mut b = reference.neighbor_ids(&ref_pin, v);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "neighbors({v})");
                let mut c = g.neighbor_ids_pinned(&pins, v);
                c.sort_unstable();
                assert_eq!(c, b, "pinned neighbors({v})");
            }
            g.validate().expect("cross-shard audit");
        }
    }

    #[test]
    fn insert_and_delete_counts_match_unsharded() {
        let n_vertices = 128;
        let batch: Vec<Edge> = pairs(200, 3, n_vertices)
            .into_iter()
            .map(Edge::from)
            .collect();
        let reference = DynGraph::new(cfg(n_vertices));
        let g = ShardedGraph::new(2, cfg(n_vertices));
        assert_eq!(g.insert_edges(&batch), reference.insert_edges(&batch));
        // Re-insert: zero new either way.
        assert_eq!(g.insert_edges(&batch), reference.insert_edges(&batch));
        let del: Vec<Edge> = batch[..50].to_vec();
        assert_eq!(g.delete_edges(&del), reference.delete_edges(&del));
        g.validate().expect("audit after churn");
    }

    #[test]
    fn undirected_mirroring_routes_both_halves() {
        let config = GraphConfig {
            direction: Direction::Undirected,
            ..cfg(64)
        };
        let g = ShardedGraph::new(4, config);
        let changed = g.insert_edges(&[Edge::new(1, 2)]);
        assert_eq!(changed, 2, "both half-edges counted");
        assert!(g.edge_exists(1, 2));
        assert!(g.edge_exists(2, 1));
        g.validate().expect("mirrored cut edges audited");
    }

    #[test]
    fn vertex_deletion_sweeps_all_shards() {
        let n_vertices = 64;
        let edges: Vec<Edge> = pairs(150, 11, n_vertices)
            .into_iter()
            .map(Edge::from)
            .collect();
        let reference = DynGraph::new(cfg(n_vertices));
        reference.insert_edges(&edges);
        let g = ShardedGraph::bulk_build(4, cfg(n_vertices), &edges);
        let victims = [3u32, 17, 40];
        reference.delete_vertices(&victims);
        g.delete_vertices(&victims);
        assert_eq!(g.num_edges(), reference.num_edges());
        for v in 0..n_vertices {
            assert_eq!(g.degree(v), reference.degree(v), "degree({v})");
        }
        g.validate().expect("audit after vertex deletion");
    }

    #[test]
    fn backend_trait_is_object_safe_over_shards() {
        let mut g: Box<dyn GraphBackend> = Box::new(ShardedGraph::new(3, cfg(32)));
        assert_eq!(g.name(), "ShardedSlabGraph");
        assert_eq!(g.devices().len(), 3);
        assert_eq!(g.insert_edges(&[(1, 2), (2, 3)]), 2);
        assert!(g.contains_edge(1, 2));
        assert_eq!(g.delete_edges(&[(1, 2)]), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn router_flush_is_deterministic_and_complete() {
        let g = ShardedGraph::new(2, cfg(128));
        let router = BatchRouter::new(&g);
        // Two sessions submitting from threads: arrival order is racy,
        // flush order is not.
        let updates = pairs(60, 21, 128);
        std::thread::scope(|sc| {
            for session in 0..2usize {
                let router = &router;
                let updates = &updates;
                sc.spawn(move || {
                    for &(u, v) in &updates[session * 30..(session + 1) * 30] {
                        router.submit(session, Update::Insert(Edge::new(u, v)));
                    }
                });
            }
        });
        assert_eq!(router.queued(), 60);
        let report = router.flush();
        assert_eq!(report.updates, 60);
        assert!(report.is_complete());
        assert!(report.modeled_s() > 0.0);
        assert_eq!(router.queued(), 0, "flush drains the queues");
        // The graph now matches a direct insert of the same updates.
        let reference = DynGraph::new(cfg(128));
        reference.insert_edges(&updates.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(g.num_edges(), reference.num_edges());
        g.validate().expect("audit after routed flush");
    }

    #[test]
    fn partial_oom_on_one_shard_recovers_while_others_proceed() {
        let g = ShardedGraph::new(2, cfg(256));
        let faulty = 1usize;
        g.group()
            .device(faulty)
            .set_fault_plan(FaultPlan::fail_nth(1));
        let router = BatchRouter::new(&g);
        let updates = pairs(120, 5, 256);
        for (i, &(u, v)) in updates.iter().enumerate() {
            router.submit(i % 3, Update::Insert(Edge::new(u, v)));
        }
        let report = router.flush();
        assert!(!report.is_complete());
        assert_eq!(report.incomplete_shards(), vec![faulty]);
        let healthy = &report.shards[1 - faulty];
        assert!(healthy.is_complete(), "other shard proceeds unaffected");
        let broken = report.shards[faulty].insert.as_ref().unwrap();
        assert!(broken.error.is_some());
        assert!(!broken.pending.is_empty());
        // Clear the fault and resume exactly the pending suffix.
        g.group().device(faulty).clear_fault_plan();
        let recovered = router.recover(&report);
        assert!(recovered.is_complete(), "{recovered:?}");
        let reference = DynGraph::new(cfg(256));
        reference.insert_edges(&updates.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(g.num_edges(), reference.num_edges());
        g.validate().expect("audit after recovery");
    }

    #[test]
    fn flush_applies_inserts_before_deletes() {
        let g = ShardedGraph::new(2, cfg(64));
        let router = BatchRouter::new(&g);
        router.submit(0, Update::Insert(Edge::new(1, 2)));
        router.submit(0, Update::Delete(Edge::new(1, 2)));
        let report = router.flush();
        assert!(report.is_complete());
        assert!(!g.edge_exists(1, 2), "insert-then-delete nets to absent");
    }

    #[test]
    fn transient_fault_retries_within_policy_and_heals() {
        let g = ShardedGraph::new(2, cfg(256));
        let flaky = 0usize;
        // First 2 launch admissions fail, then the device heals; the
        // default policy allows 3 retries, so the flush should succeed.
        g.group()
            .device(flaky)
            .set_fault_plan(FaultPlan::transient_kernel(1, 2));
        let router = BatchRouter::new(&g);
        for (i, &(u, v)) in pairs(60, 9, 256).iter().enumerate() {
            router.submit(i % 2, Update::Insert(Edge::new(u, v)));
        }
        let report = router.flush();
        assert!(report.is_complete(), "{report:?}");
        assert_eq!(router.health(flaky), ShardHealth::Healthy);
        let rows = router.report().rows;
        assert_eq!(rows[flaky].retries, 2);
        assert!(rows[flaky].backoff_s > 0.0, "backoff charged");
        assert!(
            report.shards[flaky].modeled_s >= rows[flaky].backoff_s,
            "backoff counts toward the shard's modeled time"
        );
        // Acknowledged apply truncates the journal.
        assert_eq!(router.journal_depth(flaky), 0);
    }

    #[test]
    fn lost_device_opens_breaker_and_journal_holds_writes() {
        let g = ShardedGraph::new(2, cfg(256));
        let victim = 1usize;
        g.group()
            .device(victim)
            .set_fault_plan(FaultPlan::device_lost_at(1));
        let router = BatchRouter::new(&g);
        for (i, &(u, v)) in pairs(80, 11, 256).iter().enumerate() {
            router.submit(i % 2, Update::Insert(Edge::new(u, v)));
        }
        let report = router.flush();
        assert!(!report.is_complete());
        assert_eq!(router.health(victim), ShardHealth::Down);
        assert_eq!(router.unhealthy_shards(), vec![victim]);
        assert!(matches!(
            report.shards[victim].error,
            Some(RouterError::Fault { .. })
        ));
        let held = router.journal_depth(victim);
        assert!(held > 0, "down shard's writes stay journaled");
        // Second flush: the breaker is open, so the victim's device sees
        // zero launches while the other shard keeps serving.
        let before = g.group().device(victim).counters().snapshot();
        for (i, &(u, v)) in pairs(40, 12, 256).iter().enumerate() {
            router.submit(i % 2, Update::Insert(Edge::new(u, v)));
        }
        let second = router.flush();
        let delta = g
            .group()
            .device(victim)
            .counters()
            .snapshot()
            .delta(&before);
        assert_eq!(delta.launches, 0, "open breaker never touches the device");
        assert_eq!(delta.transactions, 0);
        assert!(second.shards[1 - victim].is_complete());
        assert!(
            second.shards[victim].error.is_none(),
            "held, not re-faulted"
        );
        assert!(
            router.journal_depth(victim) > held,
            "holds keep accumulating"
        );
        // Rebuild: reset + journal replay + audit + re-admit.
        let rebuilt = router.rebuild_downed().expect("audit after rebuild");
        assert_eq!(rebuilt, vec![victim]);
        assert_eq!(router.health(victim), ShardHealth::Healthy);
        assert_eq!(router.journal_depth(victim), 0);
        // Final state matches an unsharded replay of every update.
        let reference = DynGraph::new(cfg(256));
        let mut all = pairs(80, 11, 256);
        all.extend(pairs(40, 12, 256));
        reference.insert_edges(&all.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(g.num_edges(), reference.num_edges());
        g.validate().expect("audit after re-admission");
    }

    #[test]
    fn degraded_reads_survive_a_down_shard() {
        let g = ShardedGraph::new(2, cfg(128));
        let router = BatchRouter::new(&g);
        // Find a cut edge (owners differ) and an internal edge of the
        // soon-to-be-down shard.
        let updates = pairs(100, 21, 128);
        for (i, &(u, v)) in updates.iter().enumerate() {
            router.submit(i % 2, Update::Insert(Edge::new(u, v)));
        }
        assert!(router.flush().is_complete());
        let down = 0usize;
        let cut = updates
            .iter()
            .find(|&&(u, v)| g.owner_of(u) == down && g.owner_of(v) != down)
            .copied()
            .expect("some cut edge from the down shard");
        let internal = updates
            .iter()
            .find(|&&(u, v)| g.owner_of(u) == down && g.owner_of(v) == down)
            .copied()
            .expect("some internal edge on the down shard");
        g.group()
            .device(down)
            .set_fault_plan(FaultPlan::device_lost_at(1));
        // Re-submit an edge the down shard owns so the flush definitely
        // dispatches (and faults) there.
        router.submit(0, Update::Insert(Edge::new(internal.0, internal.1)));
        router.flush();
        assert_eq!(router.health(down), ShardHealth::Down);
        // Exact reads on the healthy shard's vertices.
        let survivor_v = updates
            .iter()
            .find(|&&(u, _)| g.owner_of(u) != down)
            .map(|&(u, _)| u)
            .unwrap();
        assert_eq!(router.degree_degraded(survivor_v).1, ReadQuality::Exact);
        // The cut edge's replica on the survivor answers, degraded.
        assert_eq!(
            router.edge_exists_degraded(cut.0, cut.1),
            (true, ReadQuality::Degraded)
        );
        // The internal edge is unanswerable: best-effort absence.
        assert_eq!(
            router.edge_exists_degraded(internal.0, internal.1),
            (false, ReadQuality::Degraded)
        );
        // Degraded degree counts exactly the cut out-edges that survive.
        let u = cut.0;
        let expected: u32 = updates
            .iter()
            .filter(|&&(a, b)| a == u && g.owner_of(b) != down)
            .map(|&(a, b)| (a, b))
            .collect::<std::collections::HashSet<_>>()
            .len() as u32;
        assert_eq!(router.degree_degraded(u), (expected, ReadQuality::Degraded));
    }

    #[test]
    fn router_report_renders_one_line_summary() {
        let g = ShardedGraph::new(3, cfg(64));
        let router = BatchRouter::new(&g);
        let report = router.report();
        assert_eq!(report.unhealthy_shards(), Vec::<usize>::new());
        assert_eq!(report.render(), "router health: 3/3 healthy");
        g.group()
            .device(2)
            .set_fault_plan(FaultPlan::device_lost_at(1));
        router.submit(0, Update::Insert(Edge::new(5, 60)));
        router.submit(0, Update::Insert(Edge::new(60, 5)));
        router.flush();
        let report = router.report();
        assert_eq!(report.unhealthy_shards(), vec![2]);
        let line = report.render();
        assert!(
            line.starts_with("router health: 2/3 healthy | shard 2: down"),
            "{line}"
        );
        assert!(line.contains("journal"), "{line}");
    }

    #[test]
    fn live_reads_serve_during_inflight_flushes() {
        let g = ShardedGraph::new(2, cfg(256));
        let router = BatchRouter::new(&g);
        // A stable baseline the concurrent flushes never touch.
        let stable = pairs(40, 31, 128); // ids < 128; churn uses 128..256
        for &(u, v) in &stable {
            router.submit(0, Update::Insert(Edge::new(u, v)));
        }
        assert!(router.flush().is_complete());
        // One thread keeps flushing fresh edges while this thread holds a
        // pinned session and reads the baseline: every read must answer
        // exactly, without fencing behind the in-flight dispatches.
        std::thread::scope(|sc| {
            let router = &router;
            sc.spawn(move || {
                for round in 0..8u64 {
                    for (i, &(u, v)) in pairs(30, 100 + round, 128).iter().enumerate() {
                        router.submit(
                            i % 2,
                            Update::Insert(Edge::new(128 + u % 128, 128 + v % 128)),
                        );
                    }
                    assert!(router.flush().is_complete());
                }
            });
            for _ in 0..8 {
                let pin = router.pin_read();
                assert_eq!(pin.pinned_shards(), 2);
                for &(u, v) in &stable {
                    assert_eq!(
                        router.edge_exists_live(&pin, u, v),
                        (true, ReadQuality::Exact)
                    );
                }
            }
        });
        g.validate()
            .expect("audit after concurrent read/flush churn");
    }

    #[test]
    fn live_reads_compose_with_degraded_protocol() {
        let g = ShardedGraph::new(2, cfg(128));
        let router = BatchRouter::new(&g);
        let updates = pairs(100, 21, 128);
        for (i, &(u, v)) in updates.iter().enumerate() {
            router.submit(i % 2, Update::Insert(Edge::new(u, v)));
        }
        assert!(router.flush().is_complete());
        let down = 0usize;
        let cut = updates
            .iter()
            .find(|&&(u, v)| g.owner_of(u) == down && g.owner_of(v) != down)
            .copied()
            .expect("some cut edge from the down shard");
        let internal = updates
            .iter()
            .find(|&&(u, v)| g.owner_of(u) == down && g.owner_of(v) == down)
            .copied()
            .expect("some internal edge on the down shard");
        g.group()
            .device(down)
            .set_fault_plan(FaultPlan::device_lost_at(1));
        router.submit(0, Update::Insert(Edge::new(internal.0, internal.1)));
        router.flush();
        assert_eq!(router.health(down), ShardHealth::Down);
        // A session pinned now only covers the survivor.
        let pin = router.pin_read();
        assert_eq!(pin.pinned_shards(), 1);
        // Cut edge answers from the survivor's replica, degraded.
        assert_eq!(
            router.edge_exists_live(&pin, cut.0, cut.1),
            (true, ReadQuality::Degraded)
        );
        // Internal edge of the down shard: best-effort absence.
        assert_eq!(
            router.edge_exists_live(&pin, internal.0, internal.1),
            (false, ReadQuality::Degraded)
        );
        // Survivor-owned vertices stay exact.
        let survivor_v = updates
            .iter()
            .find(|&&(u, _)| g.owner_of(u) != down)
            .map(|&(u, _)| u)
            .unwrap();
        assert_eq!(router.degree_live(&pin, survivor_v).1, ReadQuality::Exact);
        // Degraded neighbours are exactly the surviving cut out-edges.
        let (nbrs, q) = router.neighbor_ids_live(&pin, cut.0);
        assert_eq!(q, ReadQuality::Degraded);
        let mut expected: Vec<u32> = updates
            .iter()
            .filter(|&&(a, b)| a == cut.0 && g.owner_of(b) != down)
            .map(|&(_, b)| b)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(nbrs, expected);
    }

    #[test]
    fn stale_pin_after_rebuild_degrades_until_repinned() {
        let g = ShardedGraph::new(2, cfg(128));
        let router = BatchRouter::new(&g);
        let updates = pairs(60, 17, 128);
        for (i, &(u, v)) in updates.iter().enumerate() {
            router.submit(i % 2, Update::Insert(Edge::new(u, v)));
        }
        assert!(router.flush().is_complete());
        let down = 1usize;
        let internal = updates
            .iter()
            .find(|&&(u, v)| g.owner_of(u) == down && g.owner_of(v) == down)
            .copied()
            .expect("an internal edge on the victim shard");
        // Pin while healthy, then lose and rebuild the shard: the rebuild
        // swaps in a fresh graph whose allocator does not own our guard.
        let pin = router.pin_read();
        assert_eq!(pin.pinned_shards(), 2);
        g.group()
            .device(down)
            .set_fault_plan(FaultPlan::device_lost_at(1));
        router.submit(0, Update::Insert(Edge::new(internal.0, internal.1)));
        router.flush();
        assert_eq!(router.health(down), ShardHealth::Down);
        assert_eq!(router.rebuild_downed().expect("rebuild"), vec![down]);
        assert_eq!(router.health(down), ShardHealth::Healthy);
        // The stale guard cannot protect the rebuilt shard: reads routed
        // there degrade instead of touching it unprotected.
        assert_eq!(
            router.edge_exists_live(&pin, internal.0, internal.1).1,
            ReadQuality::Degraded
        );
        // A fresh session pins the rebuilt shard and answers exactly.
        let fresh = router.pin_read();
        assert_eq!(fresh.pinned_shards(), 2);
        assert_eq!(
            router.edge_exists_live(&fresh, internal.0, internal.1),
            (true, ReadQuality::Exact)
        );
    }
}
