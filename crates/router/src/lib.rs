//! # router — a sharded dynamic graph behind an async batch router
//!
//! The paper's structure is a single-GPU graph; the roadmap's north star is
//! a service. This crate bridges the two: a [`ShardedGraph`] hash-partitions
//! the vertex dictionary across N `DynGraph` shards, each on its own device
//! of a [`gpu_sim::DeviceGroup`], and a [`BatchRouter`] coalesces updates
//! from concurrent client sessions into per-shard batches dispatched
//! concurrently — CUDA-streams style, with the overlap visible in a merged
//! Chrome trace.
//!
//! ## Partitioning and the cut-edge protocol
//!
//! Vertex `v` is *owned* by shard [`shard_of`]`(v, n)` (a splitmix64
//! finalizer, so ownership is balanced regardless of id structure and
//! deterministic across runs). A directed edge ⟨u,v⟩ has its **primary**
//! copy on `owner(u)` — the shard that answers every query about `u` — and,
//! when `owner(v) != owner(u)` (a *cut edge*), a **replica** copy on
//! `owner(v)`, stored under the same ⟨u → v⟩ key. Replicas keep each shard
//! self-contained for dst-side work: vertex deletion can tombstone incoming
//! edges without a cross-shard scatter, and [`ShardedGraph::validate`] can
//! audit consistency pairwise. Because every query routes to the owner and
//! `changed` counts come from primary sub-batches only, results are
//! *identical* to an unsharded `DynGraph` replaying the same stream —
//! `tests/sharding.rs` asserts this at 1/2/4 shards.
//!
//! ## The router
//!
//! Client sessions [`BatchRouter::submit`] updates concurrently (each
//! session's order is preserved; sessions are drained in id order, so a
//! flush is deterministic regardless of arrival interleaving).
//! [`BatchRouter::flush`] coalesces the queue into one insert and one
//! delete batch per shard, dispatches all shards concurrently through the
//! device group's executor, and returns per-shard [`BatchOutcome`]s plus
//! per-shard modeled times. A shard that runs out of memory (capacity
//! budget or injected fault) reports a *partial* outcome with its pending
//! suffix while the other shards complete unaffected; after the caller
//! raises the budget (or clears the fault plan), [`BatchRouter::recover`]
//! resumes exactly the pending suffixes via `retry_suffix`.

use gpu_sim::{CostModel, Device, DeviceConfig, DeviceGroup, ExecPolicy};
use parking_lot::Mutex;
use slabgraph::{BatchOutcome, Direction, DynGraph, Edge, GraphConfig, ValidationError};

/// The owner shard of vertex `v` among `n_shards`: a splitmix64 finalizer
/// over the id, reduced mod `n_shards`. Deterministic, balanced, and
/// independent of insertion order.
pub fn shard_of(v: u32, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    let mut z = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) % n_shards as u64) as usize
}

/// Per-shard edge batches produced by partitioning one logical batch:
/// `primary[s]` holds edges whose src shard `s` owns, `replica[s]` the cut
/// edges mirrored to `s` because it owns the dst.
struct ShardBatches {
    primary: Vec<Vec<Edge>>,
    replica: Vec<Vec<Edge>>,
}

/// A dynamic graph hash-partitioned across N [`DynGraph`] shards, one per
/// device of a [`DeviceGroup`]. See the crate docs for the cut-edge
/// protocol and determinism guarantees.
pub struct ShardedGraph {
    group: DeviceGroup,
    shards: Vec<DynGraph>,
    direction: Direction,
    n_vertices: u32,
}

// The shard dispatch path shares `&DynGraph` across scoped threads.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<DynGraph>();
    assert_sync::<Device>();
};

impl ShardedGraph {
    /// Build an empty sharded graph. `config` describes the *aggregate*
    /// structure: the device budget and slab pool are split evenly across
    /// shards (so scaling the shard count compares like-for-like), every
    /// shard keeps the full vertex-id range (any id can own primaries or
    /// host replicas), and undirected semantics are applied here — shards
    /// are always directed, because the two half-edges of an undirected
    /// pair can have different owners.
    pub fn new(n_shards: usize, config: GraphConfig) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let per_shard_words = (config.device_words / n_shards).max(1 << 14);
        let group = DeviceGroup::new(
            n_shards,
            DeviceConfig {
                initial_words: per_shard_words,
                capacity_words: config.device_capacity_words,
                policy: ExecPolicy::Sequential,
                ..DeviceConfig::default()
            },
        );
        let shard_cfg = GraphConfig {
            direction: Direction::Directed,
            device_words: per_shard_words,
            pool_slabs: (config.pool_slabs / n_shards).max(1 << 6),
            ..config
        };
        let shards = (0..n_shards)
            .map(|s| DynGraph::on_device(group.device(s).clone(), shard_cfg))
            .collect();
        ShardedGraph {
            group,
            shards,
            direction: config.direction,
            n_vertices: config.vertex_capacity,
        }
    }

    /// Build and populate from an edge list in one step.
    pub fn bulk_build(n_shards: usize, config: GraphConfig, edges: &[Edge]) -> Self {
        let g = Self::new(n_shards, config);
        g.insert_edges(edges);
        g
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The device group the shards run on (per-shard devices, merged
    /// traces, Chrome export).
    pub fn group(&self) -> &DeviceGroup {
        &self.group
    }

    /// Shard `s`'s graph (owner-side tables plus replicas it hosts).
    pub fn shard(&self, s: usize) -> &DynGraph {
        &self.shards[s]
    }

    /// The owner shard of vertex `v`.
    pub fn owner_of(&self, v: u32) -> usize {
        shard_of(v, self.shards.len())
    }

    /// Vertex capacity (ids are `0..vertex_capacity`).
    pub fn vertex_capacity(&self) -> u32 {
        self.n_vertices
    }

    /// Mirror for undirected semantics, then split into per-shard primary
    /// and replica batches, preserving batch order within each shard.
    fn partition(&self, edges: &[Edge]) -> ShardBatches {
        let n = self.shards.len();
        let mut primary: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut replica: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut route = |e: Edge| {
            let su = shard_of(e.src, n);
            let sv = shard_of(e.dst, n);
            primary[su].push(e);
            if sv != su {
                replica[sv].push(e);
            }
        };
        for &e in edges {
            route(e);
            if self.direction == Direction::Undirected {
                route(e.reversed());
            }
        }
        ShardBatches { primary, replica }
    }

    /// Insert a batch of edges; returns how many were new (summed over
    /// undirected mirror copies, exactly like `DynGraph::insert_edges`).
    /// Shards run concurrently; the count comes from primary copies only,
    /// so it matches an unsharded replay.
    pub fn insert_edges(&self, edges: &[Edge]) -> u64 {
        let parts = self.partition(edges);
        self.group
            .dispatch(|s, _| {
                let g = &self.shards[s];
                let changed = g.insert_edges(&parts.primary[s]);
                g.insert_edges(&parts.replica[s]);
                changed
            })
            .iter()
            .sum()
    }

    /// Delete a batch of edges; returns how many were present (primary
    /// copies only — see [`Self::insert_edges`]).
    pub fn delete_edges(&self, edges: &[Edge]) -> u64 {
        let parts = self.partition(edges);
        self.group
            .dispatch(|s, _| {
                let g = &self.shards[s];
                let changed = g.delete_edges(&parts.primary[s]);
                g.delete_edges(&parts.replica[s]);
                changed
            })
            .iter()
            .sum()
    }

    /// Delete vertices and every incident edge. Every shard runs the
    /// deletion: the owner drops the vertex's primary tables, shards
    /// hosting replicas of its out-edges drop those tables too, and the
    /// dst-side sweep on each shard tombstones incoming copies — so no
    /// cross-shard scatter is needed.
    pub fn delete_vertices(&self, vertices: &[u32]) {
        self.group.dispatch(|s, _| {
            self.shards[s].delete_vertices(vertices);
        });
    }

    /// Membership query for one edge, answered by `src`'s owner.
    pub fn edge_exists(&self, src: u32, dst: u32) -> bool {
        self.shards[self.owner_of(src)].edge_exists(src, dst)
    }

    /// Batched membership queries: pairs route to their src's owner, the
    /// per-shard query kernels run concurrently, and results return in the
    /// caller's order — bit-identical to an unsharded replay.
    pub fn edges_exist(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        let n = self.shards.len();
        let mut index: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut per: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for (i, &p) in pairs.iter().enumerate() {
            let s = shard_of(p.0, n);
            index[s].push(i);
            per[s].push(p);
        }
        let results = self
            .group
            .dispatch(|s, _| self.shards[s].edges_exist(&per[s]));
        let mut out = vec![false; pairs.len()];
        for (s, found) in results.into_iter().enumerate() {
            for (k, b) in found.into_iter().enumerate() {
                out[index[s][k]] = b;
            }
        }
        out
    }

    /// Out-degree of `u`, from its owner shard.
    pub fn degree(&self, u: u32) -> u32 {
        self.shards[self.owner_of(u)].degree(u)
    }

    /// `u`'s neighbours, from its owner shard (the primary copy holds the
    /// complete adjacency).
    pub fn neighbor_ids(&self, u: u32) -> Vec<u32> {
        self.shards[self.owner_of(u)].neighbor_ids(u)
    }

    /// Allocation-free adjacency iteration on the owner shard.
    pub fn for_each_neighbor(&self, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        self.shards[self.owner_of(u)].for_each_neighbor(u, f)
    }

    /// Exact live-edge count: the sum of owned-vertex degrees across
    /// shards (replicas are bookkeeping, not extra edges).
    pub fn num_edges(&self) -> u64 {
        self.group
            .dispatch(|s, _| {
                (0..self.n_vertices)
                    .filter(|&v| shard_of(v, self.shards.len()) == s)
                    .map(|v| self.shards[s].degree(v) as u64)
                    .sum::<u64>()
            })
            .iter()
            .sum()
    }

    /// Full validation: every shard's structural invariants
    /// (`DynGraph::validate`), then the cross-shard audit — every cut edge
    /// present on both owners, no orphan or misrouted replicas, and the
    /// global counts reconcile (`Σ per-shard edges = owned + cut`).
    pub fn validate(&self) -> Result<(), ShardedValidationError> {
        let n = self.shards.len();
        for (s, r) in self
            .group
            .dispatch(|s, _| self.shards[s].validate())
            .into_iter()
            .enumerate()
        {
            r.map_err(|source| ShardedValidationError::Shard { shard: s, source })?;
        }
        let mut cut = 0u64;
        let mut replicas = 0u64;
        let mut owned = 0u64;
        let mut stored = 0u64;
        for u in 0..self.n_vertices {
            let su = shard_of(u, n);
            for (s, shard) in self.shards.iter().enumerate() {
                let neighbors = shard.neighbor_ids(u);
                stored += neighbors.len() as u64;
                if s == su {
                    owned += neighbors.len() as u64;
                    // Primary side: every cut edge must have its replica.
                    for v in neighbors {
                        let sv = shard_of(v, n);
                        if sv != su {
                            cut += 1;
                            if !self.shards[sv].edge_exists(u, v) {
                                return Err(ShardedValidationError::MissingReplica {
                                    src: u,
                                    dst: v,
                                    src_shard: su,
                                    dst_shard: sv,
                                });
                            }
                        }
                    }
                } else {
                    // Replica side: must be dst-owned here and backed by a
                    // live primary on the src's owner.
                    for v in neighbors {
                        replicas += 1;
                        if shard_of(v, n) != s || !self.shards[su].edge_exists(u, v) {
                            return Err(ShardedValidationError::OrphanReplica {
                                src: u,
                                dst: v,
                                shard: s,
                            });
                        }
                    }
                }
            }
        }
        if replicas != cut || stored != owned + cut {
            return Err(ShardedValidationError::CountMismatch {
                owned,
                cut,
                replicas,
                stored,
            });
        }
        Ok(())
    }
}

/// What [`ShardedGraph::validate`] can find beyond a single shard's own
/// invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardedValidationError {
    /// A shard failed its own `DynGraph::validate`.
    Shard {
        shard: usize,
        source: ValidationError,
    },
    /// A cut edge's primary exists but its replica is missing on the dst
    /// owner.
    MissingReplica {
        src: u32,
        dst: u32,
        src_shard: usize,
        dst_shard: usize,
    },
    /// A replica with no backing primary, or stored on a shard that owns
    /// neither endpoint.
    OrphanReplica { src: u32, dst: u32, shard: usize },
    /// Global reconciliation failed: stored entries must equal owned
    /// primaries plus cut-edge replicas, and replicas must equal cut edges.
    CountMismatch {
        owned: u64,
        cut: u64,
        replicas: u64,
        stored: u64,
    },
}

impl std::fmt::Display for ShardedValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedValidationError::Shard { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            ShardedValidationError::MissingReplica {
                src,
                dst,
                src_shard,
                dst_shard,
            } => write!(
                f,
                "cut edge {src}\u{2192}{dst}: primary on shard {src_shard} but no replica on shard {dst_shard}"
            ),
            ShardedValidationError::OrphanReplica { src, dst, shard } => write!(
                f,
                "shard {shard}: replica {src}\u{2192}{dst} has no backing primary (or wrong owner)"
            ),
            ShardedValidationError::CountMismatch {
                owned,
                cut,
                replicas,
                stored,
            } => write!(
                f,
                "counts do not reconcile: stored {stored} != owned {owned} + cut {cut} (replicas {replicas})"
            ),
        }
    }
}

impl std::error::Error for ShardedValidationError {}

// ---------------------------------------------------------------------------
// GraphBackend: the sharded graph drops into every existing driver.
// ---------------------------------------------------------------------------

impl backend::GraphBackend for ShardedGraph {
    fn name(&self) -> &'static str {
        "ShardedSlabGraph"
    }

    fn caps(&self) -> backend::Capabilities {
        backend::Capabilities {
            insert_edges: true,
            delete_edges: true,
            delete_vertices: true,
            intersection: backend::IntersectionKind::HashProbe,
        }
    }

    fn device(&self) -> &Device {
        self.group.device(0).as_ref()
    }

    fn devices(&self) -> Vec<&Device> {
        self.group.devices().iter().map(|d| d.as_ref()).collect()
    }

    fn num_vertices(&self) -> u32 {
        self.n_vertices
    }

    fn num_edges(&self) -> u64 {
        ShardedGraph::num_edges(self)
    }

    fn degree(&self, u: u32) -> u32 {
        ShardedGraph::degree(self, u)
    }

    fn contains_edge(&self, u: u32, v: u32) -> bool {
        self.edge_exists(u, v)
    }

    fn edges_exist(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        ShardedGraph::edges_exist(self, pairs)
    }

    fn read_neighbors(&self, u: u32) -> Vec<u32> {
        self.neighbor_ids(u)
    }

    fn for_each_neighbor(&self, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        ShardedGraph::for_each_neighbor(self, u, f)
    }

    fn insert_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        let edges: Vec<Edge> = edges.iter().map(|&p| Edge::from(p)).collect();
        ShardedGraph::insert_edges(self, &edges)
    }

    fn delete_edges(&mut self, edges: &[(u32, u32)]) -> u64 {
        let edges: Vec<Edge> = edges.iter().map(|&p| Edge::from(p)).collect();
        ShardedGraph::delete_edges(self, &edges)
    }

    fn delete_vertices(&mut self, vertices: &[u32]) {
        ShardedGraph::delete_vertices(self, vertices)
    }
}

// ---------------------------------------------------------------------------
// The async batch router.
// ---------------------------------------------------------------------------

/// One client update. Sessions submit these; the router coalesces them
/// into per-shard batches at flush time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update {
    /// Insert one edge (weight carried through on map-kind shards).
    Insert(Edge),
    /// Delete one edge.
    Delete(Edge),
}

/// One shard's view of a flush: its batch outcomes and modeled time.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    pub shard: usize,
    /// Outcome of the shard's coalesced insert batch (primaries then
    /// replicas, session order preserved). `None` when the flush carried
    /// no inserts for this shard.
    pub insert: Option<BatchOutcome>,
    /// Outcome of the shard's coalesced delete batch.
    pub delete: Option<BatchOutcome>,
    /// Modeled GPU seconds this shard spent on the flush.
    pub modeled_s: f64,
}

impl ShardOutcome {
    /// Whether every batch routed to this shard was fully applied.
    pub fn is_complete(&self) -> bool {
        self.insert.as_ref().is_none_or(BatchOutcome::is_complete)
            && self.delete.as_ref().is_none_or(BatchOutcome::is_complete)
    }
}

/// What one [`BatchRouter::flush`] (or [`BatchRouter::recover`]) did.
#[derive(Debug, Clone)]
pub struct FlushReport {
    /// Updates drained from the session queues (0 for a recovery pass).
    pub updates: usize,
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
}

impl FlushReport {
    /// Whether every shard applied its batches fully.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(ShardOutcome::is_complete)
    }

    /// Shards with unapplied work (candidates for [`BatchRouter::recover`]).
    pub fn incomplete_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| !s.is_complete())
            .map(|s| s.shard)
            .collect()
    }

    /// The flush's modeled makespan: shards run concurrently, so this is
    /// the *maximum* per-shard modeled time, not the sum.
    pub fn modeled_s(&self) -> f64 {
        self.shards.iter().map(|s| s.modeled_s).fold(0.0, f64::max)
    }
}

/// Host-side async batch router over a [`ShardedGraph`]. Concurrent
/// sessions [`Self::submit`] updates; [`Self::flush`] coalesces and
/// dispatches them. See the crate docs for ordering semantics.
pub struct BatchRouter<'g> {
    graph: &'g ShardedGraph,
    /// Per-session FIFO queues, indexed by session id. A `Mutex` (not a
    /// channel) so that draining is session-major — deterministic no
    /// matter how submission threads interleaved.
    sessions: Mutex<Vec<Vec<Update>>>,
}

impl<'g> BatchRouter<'g> {
    pub fn new(graph: &'g ShardedGraph) -> Self {
        BatchRouter {
            graph,
            sessions: Mutex::new(Vec::new()),
        }
    }

    /// Enqueue one update for `session`. Safe to call from any thread;
    /// order *within* a session is the caller's submission order.
    pub fn submit(&self, session: usize, update: Update) {
        let mut q = self.sessions.lock();
        if q.len() <= session {
            q.resize_with(session + 1, Vec::new);
        }
        q[session].push(update);
    }

    /// Updates currently queued across all sessions.
    pub fn queued(&self) -> usize {
        self.sessions.lock().iter().map(Vec::len).sum()
    }

    /// Drain every session queue (session-major, submission order within a
    /// session), coalesce into one insert batch and one delete batch per
    /// shard — primaries and cut-edge replicas included — and dispatch all
    /// shards concurrently. Within a flush, inserts apply before deletes.
    ///
    /// Each shard uses the fallible batch path: a shard that exhausts its
    /// device budget reports a partial [`BatchOutcome`] carrying the
    /// unapplied suffix, while the other shards proceed to completion.
    pub fn flush(&self) -> FlushReport {
        let drained: Vec<Vec<Update>> = std::mem::take(&mut *self.sessions.lock());
        let updates: usize = drained.iter().map(Vec::len).sum();
        let n = self.graph.num_shards();
        let mut inserts: Vec<Edge> = Vec::new();
        let mut deletes: Vec<Edge> = Vec::new();
        for session in &drained {
            for &u in session {
                match u {
                    Update::Insert(e) => inserts.push(e),
                    Update::Delete(e) => deletes.push(e),
                }
            }
        }
        let ins_parts = self.graph.partition(&inserts);
        let del_parts = self.graph.partition(&deletes);
        // Per shard: one coalesced insert batch (primaries first, then
        // replicas — retry order must match apply order), one delete batch.
        let ins_batches: Vec<Vec<Edge>> = (0..n)
            .map(|s| {
                let mut b = ins_parts.primary[s].clone();
                b.extend_from_slice(&ins_parts.replica[s]);
                b
            })
            .collect();
        let del_batches: Vec<Vec<Edge>> = (0..n)
            .map(|s| {
                let mut b = del_parts.primary[s].clone();
                b.extend_from_slice(&del_parts.replica[s]);
                b
            })
            .collect();
        let model = CostModel::titan_v();
        let shards = self.graph.group().dispatch(|s, dev| {
            let g = self.graph.shard(s);
            let before = dev.counters().snapshot();
            let _phase = dev.phase("router.flush");
            let insert = (!ins_batches[s].is_empty())
                .then(|| g.try_insert_edges(&ins_batches[s]).expect("valid edge ids"));
            let delete = if del_batches[s].is_empty() {
                None
            } else if insert.as_ref().is_none_or(|o| o.is_complete()) {
                Some(g.try_delete_edges(&del_batches[s]).expect("valid edge ids"))
            } else {
                // The shard is out of memory mid-insert: hold the deletes
                // as fully-pending so recovery preserves apply order.
                Some(BatchOutcome {
                    op: slabgraph::BatchOp::DeleteEdges,
                    attempted: del_batches[s].len(),
                    completed: 0,
                    changed: 0,
                    pending: del_batches[s].clone(),
                    pending_vertices: Vec::new(),
                    error: None,
                })
            };
            drop(_phase);
            let delta = dev.counters().snapshot().delta(&before);
            ShardOutcome {
                shard: s,
                insert,
                delete,
                modeled_s: model.seconds(&delta),
            }
        });
        FlushReport { updates, shards }
    }

    /// Resume the pending suffixes of an incomplete flush — call after
    /// raising the failing shard's budget
    /// ([`gpu_sim::Device::set_capacity_words`]) or clearing its fault
    /// plan. Only incomplete shards re-run (concurrently); complete shards
    /// are carried over untouched. The returned report may itself be
    /// partial, in which case recovery can be repeated.
    pub fn recover(&self, report: &FlushReport) -> FlushReport {
        let model = CostModel::titan_v();
        let shards = self.graph.group().dispatch(|s, dev| {
            let prior = &report.shards[s];
            if prior.is_complete() {
                return prior.clone();
            }
            let g = self.graph.shard(s);
            let before = dev.counters().snapshot();
            let _phase = dev.phase("router.recover");
            let retry = |o: &Option<BatchOutcome>| -> Option<BatchOutcome> {
                o.as_ref().map(|o| {
                    if o.is_complete() {
                        o.clone()
                    } else {
                        let mut next = g.retry_suffix(o).expect("valid edge ids");
                        // Fold the already-applied prefix into the resumed
                        // outcome so counts stay cumulative for the flush.
                        next.attempted = o.attempted;
                        next.completed += o.completed;
                        next.changed += o.changed;
                        next
                    }
                })
            };
            let insert = retry(&prior.insert);
            let delete = if insert.as_ref().is_none_or(|o| o.is_complete()) {
                retry(&prior.delete)
            } else {
                prior.delete.clone()
            };
            drop(_phase);
            let delta = dev.counters().snapshot().delta(&before);
            ShardOutcome {
                shard: s,
                insert,
                delete,
                modeled_s: model.seconds(&delta),
            }
        });
        FlushReport { updates: 0, shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backend::GraphBackend;
    use gpu_sim::FaultPlan;

    fn cfg(n_vertices: u32) -> GraphConfig {
        GraphConfig::directed_map(n_vertices)
            .with_device_words(1 << 18)
            .with_pool_slabs(1 << 8)
    }

    fn pairs(n: usize, seed: u64, n_vertices: u32) -> Vec<(u32, u32)> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|_| {
                let u = (next() % n_vertices as u64) as u32;
                let mut v = (next() % n_vertices as u64) as u32;
                if v == u {
                    v = (v + 1) % n_vertices;
                }
                (u, v)
            })
            .collect()
    }

    #[test]
    fn shard_of_is_balanced_and_stable() {
        let mut counts = [0usize; 4];
        for v in 0..4000u32 {
            counts[shard_of(v, 4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "unbalanced: {counts:?}");
        }
        assert_eq!(shard_of(42, 1), 0);
        assert_eq!(shard_of(42, 4), shard_of(42, 4));
    }

    #[test]
    fn sharded_matches_unsharded_queries() {
        let n_vertices = 256;
        let edges: Vec<Edge> = pairs(400, 7, n_vertices)
            .into_iter()
            .map(Edge::from)
            .collect();
        let reference = DynGraph::new(cfg(n_vertices));
        reference.insert_edges(&edges);
        for shards in [1, 2, 4] {
            let g = ShardedGraph::bulk_build(shards, cfg(n_vertices), &edges);
            assert_eq!(g.num_edges(), reference.num_edges(), "{shards} shards");
            let qry = pairs(300, 99, n_vertices);
            assert_eq!(g.edges_exist(&qry), reference.edges_exist(&qry));
            for v in 0..n_vertices {
                assert_eq!(g.degree(v), reference.degree(v), "degree({v})");
                let mut a = g.neighbor_ids(v);
                let mut b = reference.neighbor_ids(v);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "neighbors({v})");
            }
            g.validate().expect("cross-shard audit");
        }
    }

    #[test]
    fn insert_and_delete_counts_match_unsharded() {
        let n_vertices = 128;
        let batch: Vec<Edge> = pairs(200, 3, n_vertices)
            .into_iter()
            .map(Edge::from)
            .collect();
        let reference = DynGraph::new(cfg(n_vertices));
        let g = ShardedGraph::new(2, cfg(n_vertices));
        assert_eq!(g.insert_edges(&batch), reference.insert_edges(&batch));
        // Re-insert: zero new either way.
        assert_eq!(g.insert_edges(&batch), reference.insert_edges(&batch));
        let del: Vec<Edge> = batch[..50].to_vec();
        assert_eq!(g.delete_edges(&del), reference.delete_edges(&del));
        g.validate().expect("audit after churn");
    }

    #[test]
    fn undirected_mirroring_routes_both_halves() {
        let config = GraphConfig {
            direction: Direction::Undirected,
            ..cfg(64)
        };
        let g = ShardedGraph::new(4, config);
        let changed = g.insert_edges(&[Edge::new(1, 2)]);
        assert_eq!(changed, 2, "both half-edges counted");
        assert!(g.edge_exists(1, 2));
        assert!(g.edge_exists(2, 1));
        g.validate().expect("mirrored cut edges audited");
    }

    #[test]
    fn vertex_deletion_sweeps_all_shards() {
        let n_vertices = 64;
        let edges: Vec<Edge> = pairs(150, 11, n_vertices)
            .into_iter()
            .map(Edge::from)
            .collect();
        let reference = DynGraph::new(cfg(n_vertices));
        reference.insert_edges(&edges);
        let g = ShardedGraph::bulk_build(4, cfg(n_vertices), &edges);
        let victims = [3u32, 17, 40];
        reference.delete_vertices(&victims);
        g.delete_vertices(&victims);
        assert_eq!(g.num_edges(), reference.num_edges());
        for v in 0..n_vertices {
            assert_eq!(g.degree(v), reference.degree(v), "degree({v})");
        }
        g.validate().expect("audit after vertex deletion");
    }

    #[test]
    fn backend_trait_is_object_safe_over_shards() {
        let mut g: Box<dyn GraphBackend> = Box::new(ShardedGraph::new(3, cfg(32)));
        assert_eq!(g.name(), "ShardedSlabGraph");
        assert_eq!(g.devices().len(), 3);
        assert_eq!(g.insert_edges(&[(1, 2), (2, 3)]), 2);
        assert!(g.contains_edge(1, 2));
        assert_eq!(g.delete_edges(&[(1, 2)]), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn router_flush_is_deterministic_and_complete() {
        let g = ShardedGraph::new(2, cfg(128));
        let router = BatchRouter::new(&g);
        // Two sessions submitting from threads: arrival order is racy,
        // flush order is not.
        let updates = pairs(60, 21, 128);
        std::thread::scope(|sc| {
            for session in 0..2usize {
                let router = &router;
                let updates = &updates;
                sc.spawn(move || {
                    for &(u, v) in &updates[session * 30..(session + 1) * 30] {
                        router.submit(session, Update::Insert(Edge::new(u, v)));
                    }
                });
            }
        });
        assert_eq!(router.queued(), 60);
        let report = router.flush();
        assert_eq!(report.updates, 60);
        assert!(report.is_complete());
        assert!(report.modeled_s() > 0.0);
        assert_eq!(router.queued(), 0, "flush drains the queues");
        // The graph now matches a direct insert of the same updates.
        let reference = DynGraph::new(cfg(128));
        reference.insert_edges(&updates.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(g.num_edges(), reference.num_edges());
        g.validate().expect("audit after routed flush");
    }

    #[test]
    fn partial_oom_on_one_shard_recovers_while_others_proceed() {
        let g = ShardedGraph::new(2, cfg(256));
        let faulty = 1usize;
        g.group()
            .device(faulty)
            .set_fault_plan(FaultPlan::fail_nth(1));
        let router = BatchRouter::new(&g);
        let updates = pairs(120, 5, 256);
        for (i, &(u, v)) in updates.iter().enumerate() {
            router.submit(i % 3, Update::Insert(Edge::new(u, v)));
        }
        let report = router.flush();
        assert!(!report.is_complete());
        assert_eq!(report.incomplete_shards(), vec![faulty]);
        let healthy = &report.shards[1 - faulty];
        assert!(healthy.is_complete(), "other shard proceeds unaffected");
        let broken = report.shards[faulty].insert.as_ref().unwrap();
        assert!(broken.error.is_some());
        assert!(!broken.pending.is_empty());
        // Clear the fault and resume exactly the pending suffix.
        g.group().device(faulty).clear_fault_plan();
        let recovered = router.recover(&report);
        assert!(recovered.is_complete(), "{recovered:?}");
        let reference = DynGraph::new(cfg(256));
        reference.insert_edges(&updates.iter().map(|&p| Edge::from(p)).collect::<Vec<_>>());
        assert_eq!(g.num_edges(), reference.num_edges());
        g.validate().expect("audit after recovery");
    }

    #[test]
    fn flush_applies_inserts_before_deletes() {
        let g = ShardedGraph::new(2, cfg(64));
        let router = BatchRouter::new(&g);
        router.submit(0, Update::Insert(Edge::new(1, 2)));
        router.submit(0, Update::Delete(Edge::new(1, 2)));
        let report = router.flush();
        assert!(report.is_complete());
        assert!(!g.edge_exists(1, 2), "insert-then-delete nets to absent");
    }
}
