//! The vertex dictionary (paper §III, §IV-A1).
//!
//! A device-resident array indexed by vertex id. Each entry is three words:
//!
//! ```text
//! word 0: base address of the vertex's hash-table base slabs (NULL_ADDR if
//!         the vertex's table has not been constructed yet)
//! word 1: number of buckets
//! word 2: exact live-edge count
//! ```
//!
//! Growing past capacity performs the paper's *shallow copy*: only these
//! three words per vertex move; the hash tables themselves stay put.

use gpu_sim::{Addr, Device, Lanes, OomError, Warp, NULL_ADDR, SLAB_WORDS};
use slab_hash::{TableDesc, TableKind};
use std::sync::atomic::{AtomicU32, Ordering};

/// Words per dictionary entry.
pub const ENTRY_WORDS: u32 = 3;

/// Device-resident vertex dictionary.
pub struct VertexDict {
    base: AtomicU32,
    capacity: AtomicU32,
    kind: TableKind,
}

impl VertexDict {
    /// Allocate a dictionary for `capacity` vertices, all entries
    /// uninitialised (`NULL_ADDR` table pointer).
    pub fn new(dev: &Device, kind: TableKind, capacity: u32) -> Self {
        let capacity = capacity.max(1);
        let base = Self::alloc_entries(dev, capacity);
        VertexDict {
            base: AtomicU32::new(base),
            capacity: AtomicU32::new(capacity),
            kind,
        }
    }

    fn alloc_entries(dev: &Device, capacity: u32) -> Addr {
        Self::try_alloc_entries(dev, capacity)
            .unwrap_or_else(|e| panic!("vertex dictionary allocation failed: {e}"))
    }

    fn try_alloc_entries(dev: &Device, capacity: u32) -> Result<Addr, OomError> {
        let words = (capacity * ENTRY_WORDS) as usize;
        let base = dev.try_alloc_words(words, SLAB_WORDS)?;
        // Initialise every table pointer to NULL and counts to zero.
        // (Charged as a device memset — part of construction cost.)
        dev.memset("dict_init", base, words, 0);
        for v in 0..capacity {
            dev.arena().store(base + v * ENTRY_WORDS, NULL_ADDR);
        }
        Ok(base)
    }

    /// Current vertex capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity.load(Ordering::Acquire)
    }

    /// The table kind stored in every entry.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// Device address of vertex `v`'s entry.
    #[inline]
    pub fn entry_addr(&self, v: u32) -> Addr {
        debug_assert!(v < self.capacity(), "vertex {v} out of capacity");
        self.base.load(Ordering::Acquire) + v * ENTRY_WORDS
    }

    /// Device address of vertex `v`'s edge-count word.
    #[inline]
    pub fn count_addr(&self, v: u32) -> Addr {
        self.entry_addr(v) + 2
    }

    /// Grow capacity to at least `needed`, shallow-copying entries
    /// (paper §IV-A1: "only requires shallow copying of the pointers").
    /// Charged as a coalesced device-to-device copy.
    pub fn grow(&self, dev: &Device, needed: u32) {
        self.try_grow(dev, needed)
            .unwrap_or_else(|e| panic!("vertex dictionary growth failed: {e}"))
    }

    /// Fallible [`Self::grow`]: on a budget-exhausted device the old
    /// dictionary is left fully intact and the growth can be retried.
    pub fn try_grow(&self, dev: &Device, needed: u32) -> Result<(), OomError> {
        let old_cap = self.capacity();
        if needed <= old_cap {
            return Ok(());
        }
        let new_cap = needed.max(old_cap * 2);
        let new_base = Self::try_alloc_entries(dev, new_cap)?;
        let old_base = self.base.load(Ordering::Acquire);
        let words = (old_cap * ENTRY_WORDS) as usize;
        // Copy kernel: read + write, coalesced.
        let charge = dev.charge("dict_grow");
        charge.add_launches(1);
        charge.add_transactions(2 * (words as u64).div_ceil(SLAB_WORDS as u64));
        for i in 0..words as u32 {
            let w = dev.arena().load(old_base + i);
            dev.arena().store(new_base + i, w);
        }
        self.base.store(new_base, Ordering::Release);
        self.capacity.store(new_cap, Ordering::Release);
        Ok(())
    }

    /// Host-side (uncharged) read of vertex `v`'s table descriptor, or
    /// `None` if the vertex has no constructed table yet.
    pub fn desc_host(&self, dev: &Device, v: u32) -> Option<TableDesc> {
        if v >= self.capacity() {
            return None;
        }
        let e = self.entry_addr(v);
        let base = dev.arena().load(e);
        if base == NULL_ADDR {
            return None;
        }
        Some(TableDesc {
            kind: self.kind,
            base,
            num_buckets: dev.arena().load(e + 1),
        })
    }

    /// Host-side (uncharged) read of vertex `v`'s live-edge count.
    pub fn count_host(&self, dev: &Device, v: u32) -> u32 {
        if v >= self.capacity() {
            return 0;
        }
        dev.arena().load(self.count_addr(v))
    }

    /// Warp-side (charged) read of vertex `v`'s descriptor. One scattered
    /// read covering the entry's three words.
    pub fn desc(&self, warp: &Warp, v: u32) -> Option<TableDesc> {
        let e = self.entry_addr(v);
        let addrs = Lanes::from_fn(|i| e + (i as u32).min(ENTRY_WORDS - 1));
        let words = warp.read_lanes(&addrs, 0b11);
        let base = words.get(0);
        if base == NULL_ADDR {
            return None;
        }
        // A racing `try_install` winner may not have published the bucket
        // count yet; lazily built tables always start at one bucket, so a
        // transient zero (which would poison the bucket modulo) reads as 1.
        Some(TableDesc {
            kind: self.kind,
            base,
            num_buckets: words.get(1).max(1),
        })
    }

    /// Install a table for vertex `v` (bulk/incremental build, vertex
    /// insertion). Host-side store; the allocation itself is charged by
    /// the caller.
    pub fn install_host(&self, dev: &Device, v: u32, base: Addr, num_buckets: u32) {
        let e = self.entry_addr(v);
        dev.arena().store(e, base);
        dev.arena().store(e + 1, num_buckets);
        dev.arena().store(e + 2, 0);
    }

    /// Warp-side lazy table install: CAS the base pointer from NULL. If the
    /// CAS is lost, the winner's descriptor is returned and `fresh_base`
    /// should be released by the caller.
    pub fn try_install(
        &self,
        warp: &Warp,
        v: u32,
        fresh_base: Addr,
        num_buckets: u32,
    ) -> Result<TableDesc, TableDesc> {
        let e = self.entry_addr(v);
        match warp.atomic_cas(e, NULL_ADDR, fresh_base) {
            Ok(_) => {
                // Atomic publication: the winning CAS orders the base word
                // only. A concurrent `desc()` that already saw the new base
                // would read this word unordered if it were a plain store.
                warp.atomic_exchange(e + 1, num_buckets);
                Ok(TableDesc {
                    kind: self.kind,
                    base: fresh_base,
                    num_buckets,
                })
            }
            Err(winner_base) => {
                // Winner may not have published bucket count yet; for the
                // lazy path the count is always 1 (unknown degree ⇒ one
                // bucket, paper §III-b).
                Err(TableDesc {
                    kind: self.kind,
                    base: winner_base,
                    num_buckets: 1,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(1 << 18)
    }

    #[test]
    fn fresh_dict_has_null_entries() {
        let d = dev();
        let dict = VertexDict::new(&d, TableKind::Map, 16);
        for v in 0..16 {
            assert!(dict.desc_host(&d, v).is_none());
            assert_eq!(dict.count_host(&d, v), 0);
        }
    }

    #[test]
    fn install_and_read_back() {
        let d = dev();
        let dict = VertexDict::new(&d, TableKind::Map, 4);
        dict.install_host(&d, 2, 0x1000, 7);
        let t = dict.desc_host(&d, 2).unwrap();
        assert_eq!(t.base, 0x1000);
        assert_eq!(t.num_buckets, 7);
        assert_eq!(t.kind, TableKind::Map);
        assert!(dict.desc_host(&d, 1).is_none());
    }

    #[test]
    fn grow_preserves_entries() {
        let d = dev();
        let dict = VertexDict::new(&d, TableKind::Set, 2);
        dict.install_host(&d, 0, 0x40, 3);
        dict.install_host(&d, 1, 0x80, 5);
        d.arena().store(dict.count_addr(1), 99);
        dict.grow(&d, 100);
        assert!(dict.capacity() >= 100);
        assert_eq!(dict.desc_host(&d, 0).unwrap().base, 0x40);
        assert_eq!(dict.desc_host(&d, 1).unwrap().num_buckets, 5);
        assert_eq!(dict.count_host(&d, 1), 99);
        assert!(dict.desc_host(&d, 50).is_none(), "new entries start null");
    }

    #[test]
    fn grow_is_noop_within_capacity() {
        let d = dev();
        let dict = VertexDict::new(&d, TableKind::Map, 8);
        let before = dict.capacity();
        dict.grow(&d, 4);
        assert_eq!(dict.capacity(), before);
    }

    #[test]
    fn warp_desc_reads_installed_entry() {
        let d = dev();
        let dict = VertexDict::new(&d, TableKind::Map, 4);
        dict.install_host(&d, 3, 0x2000, 9);
        let got = parking_lot::Mutex::new(None);
        d.launch_warps("dict_test", 1, |warp| {
            *got.lock() = dict.desc(warp, 3);
        });
        let t = got.into_inner().unwrap();
        assert_eq!(t.base, 0x2000);
        assert_eq!(t.num_buckets, 9);
    }

    #[test]
    fn try_install_races_resolve_to_one_winner() {
        let d = dev();
        let dict = VertexDict::new(&d, TableKind::Map, 4);
        let results = parking_lot::Mutex::new(vec![]);
        d.launch_warps("dict_test", 8, |warp| {
            let fresh = 0x100 + warp.warp_id() * 0x20;
            let r = dict.try_install(warp, 1, fresh, 1);
            results.lock().push(r.is_ok());
        });
        let results = results.into_inner();
        assert_eq!(results.iter().filter(|r| **r).count(), 1, "one winner");
        assert!(dict.desc_host(&d, 1).is_some());
    }

    #[test]
    fn count_addr_is_third_word() {
        let d = dev();
        let dict = VertexDict::new(&d, TableKind::Map, 4);
        assert_eq!(dict.count_addr(0), dict.entry_addr(0) + 2);
        assert_eq!(dict.entry_addr(1) - dict.entry_addr(0), ENTRY_WORDS);
    }
}
