//! Structure maintenance: tombstone flushing and rehashing.
//!
//! The paper points at both operations without implementing them in the
//! measured path: "Tombstones can later be completely flushed out of the
//! data structure, if required" (§IV-C2) and "in practice we can maintain
//! low-cost metrics per vertex to determine the chain-length and
//! periodically perform rehashing if it exceeds a given threshold" (§III).
//! This module provides both.

use crate::graph::DynGraph;
use gpu_sim::SLAB_WORDS;
use slab_hash::{buckets_for, TableDesc, TableKind, EMPTY_KEY};

impl DynGraph {
    /// Flush tombstones from every vertex's hash table: each table's live
    /// entries are collected, its chains are reset to the base slabs
    /// (collision slabs return to the pool), and the entries reinserted
    /// densely. Counts are unchanged; queries see the same graph with
    /// shorter chains and zero tombstones.
    ///
    /// Returns the number of tombstones removed.
    pub fn flush_tombstones(&self) -> u64 {
        let _phase = self.dev.phase("flush_tombstones");
        let cap = self.dict.capacity();
        let removed = std::sync::atomic::AtomicU64::new(0);
        self.dev.launch_warps("flush_tombstones", 1, |warp| {
            for v in 0..cap {
                let Some(desc) = self.dict.desc_host(&self.dev, v) else {
                    continue;
                };
                let stats = desc.stats(warp);
                if stats.tombstones == 0 {
                    continue;
                }
                removed.fetch_add(stats.tombstones, std::sync::atomic::Ordering::AcqRel);
                let entries = self.collect_entries(warp, &desc);
                desc.free_dynamic_slabs(warp, &self.alloc)
                    .expect("flushed chains must be freeable");
                self.reinsert(warp, &desc, &entries);
            }
        });
        // Batch boundary (epoch release edge) for the flushed chains.
        self.dev.advance_era();
        removed.into_inner()
    }

    /// Rehash every vertex whose average chain length exceeds
    /// `max_chain` slabs into a table sized for its *current* degree at
    /// the configured load factor. New base slabs are bulk-allocated; the
    /// old base slabs are abandoned (static memory is never reclaimed,
    /// matching §IV-D2), and old collision slabs return to the pool.
    ///
    /// Returns the number of vertices rehashed.
    pub fn rehash_overloaded(&self, max_chain: f64) -> u64 {
        let _phase = self.dev.phase("rehash_overloaded");
        assert!(max_chain >= 1.0, "chains cannot be shorter than one slab");
        let cap = self.dict.capacity();
        let rehashed = std::sync::atomic::AtomicU64::new(0);
        self.dev.launch_warps("rehash", 1, |warp| {
            for v in 0..cap {
                let Some(desc) = self.dict.desc_host(&self.dev, v) else {
                    continue;
                };
                let stats = desc.stats(warp);
                if stats.avg_chain() <= max_chain {
                    continue;
                }
                rehashed.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                let entries = self.collect_entries(warp, &desc);
                let buckets = buckets_for(entries.len(), self.config.load_factor, self.config.kind);
                let base = self
                    .dev
                    .alloc_words(TableDesc::base_words(buckets), SLAB_WORDS);
                self.dev
                    .memset("rehash", base, TableDesc::base_words(buckets), EMPTY_KEY);
                // Free the old chains before republishing the pointer.
                desc.free_dynamic_slabs(warp, &self.alloc)
                    .expect("rehashed chains must be freeable");
                let new_desc = TableDesc {
                    kind: self.config.kind,
                    base,
                    num_buckets: buckets,
                };
                self.reinsert(warp, &new_desc, &entries);
                self.dict.install_host(&self.dev, v, base, buckets);
                // install_host zeroes the count; restore the exact value.
                self.dev
                    .arena()
                    .store(self.dict.count_addr(v), entries.len() as u32);
            }
        });
        // Batch boundary (epoch release edge) for the abandoned chains.
        self.dev.advance_era();
        rehashed.into_inner()
    }

    fn collect_entries(&self, warp: &gpu_sim::Warp, desc: &TableDesc) -> Vec<(u32, u32)> {
        let mut entries = Vec::new();
        match desc.kind {
            TableKind::Map => desc.for_each_pair(warp, |k, v| entries.push((k, v))),
            TableKind::Set => desc.for_each_key(warp, |k| entries.push((k, 0))),
        }
        entries
    }

    // Maintenance is not a recoverable batch: reinsertion happens into
    // freshly compacted tables after their old chains returned to the
    // pool, so it can only fail under a fault plan or a budget tighter
    // than the structure it is compacting — treated as fatal.
    fn reinsert(&self, warp: &gpu_sim::Warp, desc: &TableDesc, entries: &[(u32, u32)]) {
        for &(k, v) in entries {
            match desc.kind {
                TableKind::Map => {
                    desc.replace(warp, &self.alloc, k, v)
                        .expect("maintenance reinsert must not exhaust the pool");
                }
                TableKind::Set => {
                    desc.insert_unique(warp, &self.alloc, k)
                        .expect("maintenance reinsert must not exhaust the pool");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GraphConfig;
    use crate::graph::{DynGraph, Edge};

    fn churned_graph() -> DynGraph {
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(64), 64, 1);
        let ins: Vec<Edge> = (0..8u32)
            .flat_map(|u| (0..50u32).map(move |i| Edge::weighted(u, 8 + (u + i) % 56, i)))
            .collect();
        g.insert_edges(&ins);
        let del: Vec<Edge> = (0..8u32)
            .flat_map(|u| (0..25u32).map(move |i| Edge::new(u, 8 + (u + i * 2) % 56)))
            .collect();
        g.delete_edges(&del);
        g
    }

    #[test]
    fn flush_removes_all_tombstones_and_preserves_graph() {
        let g = churned_graph();
        let before_stats = g.stats(&g.pin_read());
        assert!(before_stats.tables.tombstones > 0, "fixture has tombstones");
        let snapshot: Vec<Vec<(u32, u32)>> = (0..64)
            .map(|v| {
                let mut n = g.neighbors(&g.pin_read(), v);
                n.sort_unstable();
                n
            })
            .collect();

        let removed = g.flush_tombstones();
        assert_eq!(removed, before_stats.tables.tombstones);
        let after = g.stats(&g.pin_read());
        assert_eq!(after.tables.tombstones, 0);
        assert_eq!(after.tables.live_keys, before_stats.tables.live_keys);
        assert!(
            after.tables.slabs <= before_stats.tables.slabs,
            "chains shrank"
        );

        for v in 0..64 {
            let mut n = g.neighbors(&g.pin_read(), v);
            n.sort_unstable();
            assert_eq!(n, snapshot[v as usize], "vertex {v} changed");
        }
        g.check_invariants();
        assert_eq!(g.flush_tombstones(), 0, "idempotent");
    }

    #[test]
    fn rehash_shortens_chains_and_preserves_graph() {
        // Single-bucket tables with high degree → long chains.
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(16), 16, 1);
        let ins: Vec<Edge> = (0..200u32)
            .map(|i| Edge::weighted(0, 1 + i % 15, i))
            .collect();
        g.insert_edges(&ins);
        let before = g.stats(&g.pin_read());
        let chain_before = before.tables.max_chain;
        assert!(chain_before >= 1);
        let snapshot = {
            let mut n = g.neighbors(&g.pin_read(), 0);
            n.sort_unstable();
            n
        };

        // Vertex 0 has 15 unique dsts in 1 bucket (1 slab chain of 1): add
        // enough churn to force multi-slab chains first.
        let more: Vec<Edge> = (0..300u32)
            .map(|i| Edge::weighted(0, 100 + i % 200, i))
            .collect();
        g.insert_edges(&more);
        let loaded = g.stats(&g.pin_read());
        assert!(loaded.tables.max_chain > 2, "chain built up");

        let rehashed = g.rehash_overloaded(2.0);
        assert!(rehashed >= 1, "vertex 0 rehashed");
        let after = g.stats(&g.pin_read());
        assert!(after.tables.max_chain <= loaded.tables.max_chain);
        assert!(after.avg_chain() < loaded.avg_chain());

        let mut n0 = g.neighbors(&g.pin_read(), 0);
        n0.sort_unstable();
        let mut expect: Vec<(u32, u32)> = snapshot;
        for e in &more {
            let w = more.iter().rfind(|m| m.dst == e.dst).unwrap().weight;
            if !expect.iter().any(|&(d, _)| d == e.dst) {
                expect.push((e.dst, w));
            }
        }
        expect.sort_unstable();
        // Weights of churned duplicates: compare destination sets instead.
        let dsts: Vec<u32> = n0.iter().map(|&(d, _)| d).collect();
        let expect_dsts: Vec<u32> = expect.iter().map(|&(d, _)| d).collect();
        assert_eq!(dsts, expect_dsts);
        assert_eq!(g.degree(0), dsts.len() as u32, "exact count preserved");
        g.check_invariants();
    }

    #[test]
    fn recycling_config_reuses_memory() {
        // Ablation (paper §IV-C2): with recycling on, reinserting after
        // deletion allocates no new slabs; with it off, chains grow.
        let run = |recycle: bool| {
            let mut cfg = GraphConfig::directed_map(8);
            if recycle {
                cfg = cfg.with_tombstone_recycling();
            }
            let g = DynGraph::with_uniform_buckets(cfg, 8, 1);
            for round in 0..6u32 {
                let ins: Vec<Edge> = (0..60u32)
                    .map(|i| Edge::weighted(0, 1 + ((round * 60 + i) % 200), i))
                    .collect();
                g.insert_edges(&ins);
                let del: Vec<Edge> = ins.iter().map(|e| Edge::new(e.src, e.dst)).collect();
                g.delete_edges(&del);
            }
            g.check_invariants();
            g.stats(&g.pin_read()).tables.slabs
        };
        let standard = run(false);
        let recycling = run(true);
        assert!(
            recycling < standard,
            "recycling ({recycling} slabs) must use fewer slabs than standard ({standard})"
        );
    }
}
