//! Vertex insertion and deletion (paper §IV-D, Algorithm 2).
//!
//! Vertex insertion (§IV-D1) is "the operation of inserting edges connected
//! to a vertex that has an empty adjacency list": grow the dictionary if
//! needed, install sized tables, then run Algorithm 1 on the attached edges.
//!
//! Vertex deletion (§IV-D2, Algorithm 2) assigns one *warp* per vertex via
//! a device-memory atomic work queue to fight load imbalance: a lane-0
//! `atomicAdd` claims the next vertex, a shuffle broadcasts it, and the
//! warp iterates the victim's slabs deleting it from every neighbour's
//! table before freeing the victim's collision slabs and zeroing its count.

use crate::batch::{BatchOp, BatchOutcome, GraphError};
use crate::config::Direction;
use crate::graph::{iter_bits, DynGraph, Edge};
use slab_alloc::AllocError;
use slab_hash::{TableDesc, TableKind};

impl DynGraph {
    /// Insert new vertices with their attached edges (§IV-D1).
    ///
    /// `ids` are the new vertex ids (tables are installed sized to the
    /// number of attached edges in `edges` whose source is the id); the
    /// dictionary grows (shallow pointer copy) if an id exceeds capacity.
    /// Returns the number of new edges added, or
    /// [`GraphError::DuplicateVertex`] / [`GraphError::InvalidVertexId`]
    /// (checked before any mutation). Panics if device memory runs out;
    /// use [`Self::try_insert_vertices`] to recover instead.
    pub fn insert_vertices(&self, ids: &[u32], edges: &[Edge]) -> Result<u64, GraphError> {
        let outcome = self.try_insert_vertices(ids, edges)?;
        if let Some(e) = outcome.error {
            panic!(
                "insert_vertices: device memory exhausted after {} of {} items: {e}",
                outcome.completed, outcome.attempted
            );
        }
        Ok(outcome.changed)
    }

    /// Fallible [`Self::insert_vertices`]: installs a prefix of the new
    /// vertices (and then a prefix of the edges) when device memory runs
    /// out, reporting the unapplied suffix for [`Self::retry_suffix`].
    ///
    /// Validation errors are still returned as `Err` — they are detected
    /// before anything is mutated.
    pub fn try_insert_vertices(
        &self,
        ids: &[u32],
        edges: &[Edge],
    ) -> Result<BatchOutcome, GraphError> {
        if ids.is_empty() {
            return self.try_insert_edges(edges);
        }
        // Validate everything up front so errors never leave a half-done
        // batch behind.
        for e in edges {
            self.check_edge(e)?;
        }
        let mut seen = std::collections::HashSet::new();
        for &v in ids {
            self.check_id(v)?;
            if !seen.insert(v) {
                return Err(GraphError::DuplicateVertex { id: v });
            }
            let recycled = self.free_ids.lock().contains(&v);
            if !recycled && self.dict.desc_host(&self.dev, v).is_some() {
                return Err(GraphError::DuplicateVertex { id: v });
            }
        }

        // A failure at vertex i leaves ids[..i] installed and usable;
        // the suffix (and all edges) is reported for retry.
        let partial = |installed: usize, e: AllocError| BatchOutcome {
            op: BatchOp::InsertVertices,
            attempted: ids.len() + edges.len(),
            completed: installed,
            changed: 0,
            pending: edges.to_vec(),
            pending_vertices: ids[installed..].to_vec(),
            error: Some(e),
        };

        let max_id = ids.iter().copied().max().unwrap();
        if let Err(e) = self.dict.try_grow(&self.dev, max_id + 1) {
            return Ok(partial(0, AllocError::Oom(e)));
        }

        // Size each new vertex's table from the batch's degree information
        // (§III-b: use connectivity information when available).
        let mirrored = self.apply_direction(edges);
        let mut deg: std::collections::HashMap<u32, u32> = ids.iter().map(|&v| (v, 0)).collect();
        for e in &mirrored {
            if e.src != e.dst {
                if let Some(d) = deg.get_mut(&e.src) {
                    *d += 1;
                }
            }
        }
        for (i, &v) in ids.iter().enumerate() {
            let recycled = {
                let mut free = self.free_ids.lock();
                if let Some(pos) = free.iter().position(|&f| f == v) {
                    free.swap_remove(pos);
                    true
                } else {
                    false
                }
            };
            if recycled {
                // The recycled slot keeps its (reset) table; just insert.
                continue;
            }
            let buckets =
                slab_hash::buckets_for(deg[&v] as usize, self.config.load_factor, self.config.kind);
            let base = match self
                .dev
                .try_alloc_words(TableDesc::base_words(buckets), gpu_sim::SLAB_WORDS)
            {
                Ok(b) => b,
                Err(e) => return Ok(partial(i, AllocError::Oom(e))),
            };
            self.dev.memset(
                "vertex_insert",
                base,
                TableDesc::base_words(buckets),
                slab_hash::EMPTY_KEY,
            );
            self.dict.install_host(&self.dev, v, base, buckets);
        }
        let mut outcome = self.try_insert_edges(edges)?;
        outcome.op = BatchOp::InsertVertices;
        outcome.attempted += ids.len();
        outcome.completed += ids.len();
        Ok(outcome)
    }

    /// Batched vertex deletion (§IV-D2, Algorithm 2).
    ///
    /// For undirected graphs, each deleted vertex is removed from all of
    /// its neighbours' adjacency lists (found via the slab iterator), its
    /// dynamically allocated collision slabs are freed, its base slabs are
    /// reset, and its edge count is zeroed. Vertex ids are *not* reused
    /// (the paper notes faimGraph recycles ids; ours does not).
    ///
    /// For directed graphs only the vertex's own memory is freed; incoming
    /// edges from arbitrary vertices are cleaned either lazily on query or
    /// eagerly via [`Self::purge_deleted`] (the paper's "follow-up lookup
    /// and delete ... in all of the hash tables").
    pub fn delete_vertices(&self, vertices: &[u32]) {
        let outcome = self
            .try_delete_vertices(vertices)
            .unwrap_or_else(|e| panic!("delete_vertices: {e}"));
        if let Some(e) = outcome.error {
            panic!("delete_vertices: device memory exhausted staging the batch: {e}");
        }
    }

    /// Fallible [`Self::delete_vertices`]. Deletion frees memory rather
    /// than allocating it, so the only recoverable failure is staging the
    /// victim list on a budget-exhausted device — in which case nothing is
    /// applied and every vertex is reported pending.
    pub fn try_delete_vertices(&self, vertices: &[u32]) -> Result<BatchOutcome, GraphError> {
        if vertices.is_empty() {
            return Ok(BatchOutcome::complete(BatchOp::DeleteVertices, 0, 0));
        }
        for &v in vertices {
            self.check_id(v)?;
        }
        let count = vertices.len() as u32;
        let undirected = self.config.direction == Direction::Undirected;
        let staged = (|| -> Result<_, gpu_sim::OomError> {
            let verts_buf = self.try_upload(vertices, u32::MAX)?;
            // Line 1: the shared work-queue counter lives in device memory.
            let queue = self.dev.try_alloc_words(1, 1)?;
            // Victim bitmap (undirected only): warps must skip destinations
            // that are themselves victims — their tables are torn down
            // wholesale by their owning warp, and deleting from them here
            // would race with that teardown (and underflow a just-zeroed
            // edge count).
            let victim_bits = if undirected {
                let bm_words = (self.dict.capacity() as usize).div_ceil(32).max(1);
                let bm = self.dev.try_alloc_words(bm_words, 1)?;
                self.dev.arena().fill(bm, bm_words, 0);
                for &v in vertices {
                    self.dev.arena().fetch_or(bm + v / 32, 1 << (v % 32));
                }
                bm
            } else {
                gpu_sim::NULL_ADDR
            };
            Ok((verts_buf, queue, victim_bits))
        })();
        let (verts_buf, queue, victim_bits) = match staged {
            Ok(bufs) => bufs,
            Err(e) => {
                return Ok(BatchOutcome {
                    op: BatchOp::DeleteVertices,
                    attempted: vertices.len(),
                    completed: 0,
                    changed: 0,
                    pending: Vec::new(),
                    pending_vertices: vertices.to_vec(),
                    error: Some(AllocError::Oom(e)),
                })
            }
        };
        self.dev.arena().store(queue, 0);

        let _phase = self.dev.phase("vertex_delete_batch");
        if let Some(p) = self.dev.profiler() {
            p.metrics()
                .record("vertex_delete.queue_depth", count as u64);
        }
        let n_warps = (count as usize).min(128);
        self.dev.launch_warps("vertex_delete", n_warps, |warp| {
            loop {
                // Lines 3–6: lane 0 claims a queue slot, broadcast to warp.
                let queue_id = warp.atomic_add(queue, 1);
                let _ = warp.shuffle(&gpu_sim::Lanes::splat(queue_id), 0);
                // Lines 7–9: all work claimed → warp exits.
                if queue_id >= count {
                    return;
                }
                // Line 10: fetch the vertex id.
                let victim = warp.read_word(verts_buf + queue_id);
                let Some(desc) = self.dict.desc(warp, victim) else {
                    continue;
                };
                // Lines 11–21: iterate the victim's slabs.
                if undirected {
                    desc.for_each_slab(warp, |view| {
                        // Lines 13–17: lanes hold destinations; loop over
                        // the valid lanes, broadcasting each destination.
                        let valid = view.valid_mask();
                        for lane in iter_bits(valid) {
                            let dst = view.words.get(lane as usize);
                            if dst == victim {
                                continue;
                            }
                            // Fellow victims are skipped: their owning warp
                            // frees the whole table (racing with it here
                            // would touch memory mid-teardown).
                            let bits = warp.read_word(victim_bits + dst / 32);
                            if bits & (1 << (dst % 32)) != 0 {
                                continue;
                            }
                            // Line 16: delete victim from dst's table.
                            if let Some(dst_desc) = self.dict.desc(warp, dst) {
                                if dst_desc.delete(warp, victim) {
                                    warp.atomic_sub(self.dict.count_addr(dst), 1);
                                }
                            }
                        }
                    });
                }
                // Lines 18–20: free dynamically allocated slabs (base
                // slabs are statically allocated and not reclaimed).
                desc.free_dynamic_slabs(warp, &self.alloc)
                    .expect("victim's collision slabs must be freeable");
                // Line 22: zero the victim's edge count.
                warp.write_word(self.dict.count_addr(victim), 0);
                // Recycle the id (faimGraph's strategy, §VI-A3).
                self.free_ids.lock().push(victim);
            }
        });
        // Batch boundary: publish the victims' freed slabs (epoch release
        // edge) so post-batch pins don't cover them.
        self.dev.advance_era();
        Ok(BatchOutcome::complete(
            BatchOp::DeleteVertices,
            vertices.len(),
            0,
        ))
    }

    /// Eager cleanup after *directed* vertex deletion: scan every vertex's
    /// table and delete any destination in `deleted` (the paper's
    /// "follow-up lookup and delete all of the deleted vertices in all of
    /// the hash tables"). The deleted set itself is stored in a device-side
    /// slab-hash set so each membership test is an O(1) probe.
    pub fn purge_deleted(&self, deleted: &[u32]) {
        self.try_purge_deleted(deleted)
            .unwrap_or_else(|e| panic!("purge_deleted: {e}"));
    }

    /// Fallible [`Self::purge_deleted`]. Building the device-side scratch
    /// set of deleted ids can exhaust the slab pool; in that case the
    /// scratch slabs are released, nothing is purged, and the whole call
    /// can simply be repeated (purging is idempotent).
    pub fn try_purge_deleted(&self, deleted: &[u32]) -> Result<(), GraphError> {
        if deleted.is_empty() {
            return Ok(());
        }
        let dead_set = TableDesc::create(
            &self.dev,
            TableKind::Set,
            slab_hash::buckets_for(deleted.len(), self.config.load_factor, TableKind::Set),
        );
        let release_dead_set = || {
            self.dev.launch_warps("purge_deleted", 1, |warp| {
                dead_set
                    .free_dynamic_slabs(warp, &self.alloc)
                    .expect("scratch-set slabs must be freeable");
            });
        };
        let first_err = parking_lot::Mutex::new(None);
        self.dev.launch_warps("purge_deleted", 1, |warp| {
            for &v in deleted {
                if let Err(e) = dead_set.insert_unique(warp, &self.alloc, v) {
                    let mut slot = first_err.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
        });
        if let Some(e) = first_err.into_inner() {
            release_dead_set();
            return Err(GraphError::Alloc(e));
        }

        let cap = self.dict.capacity();
        let n_warps = (cap as usize).min(128);
        let queue = self.dev.alloc_words(1, 1);
        self.dev.arena().store(queue, 0);
        self.dev
            .launch_warps("purge_deleted", n_warps, |warp| loop {
                let u = warp.atomic_add(queue, 1);
                if u >= cap {
                    return;
                }
                let Some(desc) = self.dict.desc(warp, u) else {
                    continue;
                };
                // Collect victims first (iterators must not observe their own
                // tombstoning mid-walk), then delete.
                let mut victims = Vec::new();
                desc.for_each_slab(warp, |view| {
                    for dst in view.keys() {
                        if dead_set.contains(warp, dst) {
                            victims.push(dst);
                        }
                    }
                });
                let mut removed = 0u32;
                for dst in victims {
                    if desc.delete(warp, dst) {
                        removed += 1;
                    }
                }
                if removed > 0 {
                    warp.atomic_sub(self.dict.count_addr(u), removed);
                }
            });
        // The scratch set's dynamic slabs go back to the pool so the
        // validate() slab audit never mistakes them for a leak.
        release_dead_set();
        // Batch boundary (epoch release edge) for the freed scratch slabs.
        self.dev.advance_era();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GraphConfig;
    use crate::graph::{DynGraph, Edge};

    /// Small undirected clique graph for deletion tests.
    fn clique(n: u32) -> DynGraph {
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_map(n * 2), n * 2, 1);
        let mut batch = vec![];
        for u in 0..n {
            for v in (u + 1)..n {
                batch.push(Edge::weighted(u, v, u * 100 + v));
            }
        }
        g.insert_edges(&batch);
        g
    }

    #[test]
    fn delete_vertex_removes_from_neighbors() {
        let g = clique(6);
        assert_eq!(g.degree(0), 5);
        g.delete_vertices(&[3]);
        assert_eq!(g.degree(3), 0, "victim emptied");
        let pin = g.pin_read();
        for v in [0u32, 1, 2, 4, 5] {
            assert_eq!(g.degree(v), 4, "neighbor {v} lost one edge");
            assert!(!g.edge_exists(&pin, v, 3), "edge {v}→3 gone");
            assert!(!g.edge_exists(&pin, 3, v), "edge 3→{v} gone");
        }
    }

    #[test]
    fn delete_multiple_vertices() {
        let g = clique(8);
        g.delete_vertices(&[1, 2, 5]);
        let pin = g.pin_read();
        for v in [1u32, 2, 5] {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(&pin, v).is_empty());
        }
        for v in [0u32, 3, 4, 6, 7] {
            assert_eq!(g.degree(v), 4, "survivor {v} keeps edges to survivors");
        }
        // Total: 5 survivors × 4 = 20 half-edges.
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn delete_vertex_frees_collision_slabs() {
        let n = 200u32;
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_map(n + 1), n + 1, 1);
        let batch: Vec<Edge> = (1..=n).map(|v| Edge::new(0, v)).collect();
        g.insert_edges(&batch);
        let live_before = g.allocator().live_slabs();
        assert!(live_before > 10, "hub vertex chained many slabs");
        g.delete_vertices(&[0]);
        assert!(
            g.allocator().live_slabs() < live_before,
            "collision slabs reclaimed"
        );
        assert_eq!(g.degree(0), 0);
        for v in 1..=n {
            assert_eq!(g.degree(v), 0, "spoke {v} lost its only edge");
        }
    }

    #[test]
    fn deleted_vertex_queries_return_nothing() {
        let g = clique(5);
        g.delete_vertices(&[2]);
        let pin = g.pin_read();
        assert!(g.neighbors(&pin, 2).is_empty());
        let pairs: Vec<(u32, u32)> = (0..5).map(|v| (2, v)).collect();
        assert!(
            g.edges_exist(&pin, &pairs).iter().all(|&b| !b),
            "no false positives"
        );
    }

    #[test]
    fn deleting_nonexistent_vertex_is_noop() {
        let g = clique(4);
        let edges_before = g.num_edges();
        g.delete_vertices(&[7]); // in capacity, never touched
        assert_eq!(g.num_edges(), edges_before);
        g.delete_vertices(&[]);
        assert_eq!(g.num_edges(), edges_before);
    }

    #[test]
    fn insert_vertices_installs_sized_tables_and_edges() {
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(4), 4, 1);
        g.insert_edges(&[Edge::new(0, 1)]);
        let edges: Vec<Edge> = (0..50).map(|i| Edge::weighted(10, i % 8, i)).collect();
        let added = g.insert_vertices(&[10], &edges).unwrap();
        assert_eq!(added, 8, "50 edges to 8 unique destinations");
        assert_eq!(g.degree(10), 8);
        assert!(g.vertex_capacity() >= 11, "dictionary grew");
        // Sized table: 8 unique dsts but hinted with 50 ⇒ ≥ 1 buckets.
        assert!(g.dict().desc_host(g.device(), 10).unwrap().num_buckets >= 4);
        // Old entries survived the shallow copy.
        assert!(g.edge_exists(&g.pin_read(), 0, 1));
    }

    #[test]
    fn insert_existing_vertex_returns_typed_error() {
        use crate::batch::GraphError;
        let g = DynGraph::new(GraphConfig::directed_map(4));
        g.insert_vertices(&[2], &[]).unwrap();
        assert_eq!(
            g.insert_vertices(&[2], &[]),
            Err(GraphError::DuplicateVertex { id: 2 })
        );
        // Duplicates within one batch are rejected before any mutation.
        assert_eq!(
            g.insert_vertices(&[5, 5], &[]),
            Err(GraphError::DuplicateVertex { id: 5 })
        );
        assert!(g.dict().desc_host(g.device(), 5).is_none(), "untouched");
    }

    #[test]
    fn invalid_edge_endpoint_reports_the_edge() {
        use crate::batch::GraphError;
        let g = DynGraph::new(GraphConfig::directed_map(4));
        let bad = Edge::new(0, u32::MAX - 1);
        assert_eq!(
            g.try_insert_edges(&[Edge::new(0, 1), bad]),
            Err(GraphError::InvalidVertexId {
                id: u32::MAX - 1,
                edge: Some(bad),
            })
        );
        assert_eq!(g.num_edges(), 0, "validation precedes mutation");
    }

    #[test]
    fn directed_delete_frees_memory_and_purge_cleans_incoming() {
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(8), 8, 1);
        g.insert_edges(&[
            Edge::new(0, 3),
            Edge::new(1, 3),
            Edge::new(3, 0),
            Edge::new(2, 1),
        ]);
        g.delete_vertices(&[3]);
        assert_eq!(g.degree(3), 0, "outgoing edges freed");
        // Incoming edges still physically present until purge...
        assert!(g.edge_exists(&g.pin_read(), 0, 3));
        g.purge_deleted(&[3]);
        assert!(
            !g.edge_exists(&g.pin_read(), 0, 3),
            "purge removed incoming edge"
        );
        assert!(!g.edge_exists(&g.pin_read(), 1, 3));
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 0);
        assert!(
            g.edge_exists(&g.pin_read(), 2, 1),
            "unrelated edge survives purge"
        );
    }

    #[test]
    fn reinserting_edges_to_deleted_vertex_id_works() {
        // Ids are not recycled, but the slot remains usable: the paper's
        // structure keeps the (reset) base slabs.
        let g = clique(4);
        g.delete_vertices(&[1]);
        g.insert_edges(&[Edge::weighted(1, 0, 5)]);
        assert_eq!(g.degree(1), 1);
        assert!(g.edge_exists(&g.pin_read(), 1, 0));
        assert!(
            g.edge_exists(&g.pin_read(), 0, 1),
            "undirected mirror restored"
        );
    }
}
