//! Query operations (paper §IV-B): `edgeExist`, weight lookup, and the
//! adjacency-list iterator.
//!
//! Every query takes a [`ReadGuard`] pinned via [`DynGraph::pin_read`]:
//! queries no longer require phase separation from updates. The guard pins
//! the launch era so the slab allocator cannot recycle any slab freed at
//! or after the pin, and the slab-hash walks validate next-pointers as
//! they hop, so a query running concurrently with an insert/delete batch
//! observes a consistent snapshot. Batched queries use the same WCWS
//! grouping as Algorithm 1 so lookups hitting the same source vertex are
//! coalesced.

use crate::graph::{iter_bits, DynGraph};
use gpu_sim::{Lanes, WARP_SIZE};
use slab_alloc::ReadGuard;
use slab_hash::TableKind;

impl DynGraph {
    /// Assert the guard pins *this* graph's allocator — a guard from a
    /// different graph would not block reclamation here, silently turning
    /// "snapshot read" into "use-after-free roulette". A hard assert even
    /// in release builds: the `Arc::ptr_eq` is negligible next to the
    /// kernel launch every query performs, and callers that legitimately
    /// hold possibly-stale guards (the router's degraded path) check
    /// `owns_guard` themselves and degrade instead of calling in.
    #[inline]
    pub(crate) fn check_pin(&self, pin: &ReadGuard) {
        assert!(
            self.alloc.owns_guard(pin),
            "ReadGuard pinned against a different graph's allocator"
        );
    }

    /// Single edge-existence query (`edgeExist`, §IV-B). Runs a one-warp
    /// kernel; prefer [`Self::edges_exist`] for batches.
    pub fn edge_exists(&self, pin: &ReadGuard, src: u32, dst: u32) -> bool {
        self.edges_exist(pin, &[(src, dst)])[0]
    }

    /// Single edge-weight lookup (map graphs).
    pub fn edge_weight(&self, pin: &ReadGuard, src: u32, dst: u32) -> Option<u32> {
        self.check_pin(pin);
        assert_eq!(
            self.config.kind,
            TableKind::Map,
            "edge weights require the map variant"
        );
        let desc = self.dict.desc_host(&self.dev, src)?;
        let out = parking_lot::Mutex::new(None);
        self.dev.launch_warps("edge_weight", 1, |warp| {
            *out.lock() = desc.search(warp, dst);
        });
        out.into_inner()
    }

    /// Batched edge-existence queries: one lane per ⟨src,dst⟩ pair, grouped
    /// by source exactly like Algorithm 1's insertion work queue.
    pub fn edges_exist(&self, pin: &ReadGuard, pairs: &[(u32, u32)]) -> Vec<bool> {
        self.check_pin(pin);
        if pairs.is_empty() {
            return vec![];
        }
        let srcs: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let dsts: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        let src_buf = self.upload(&srcs, u32::MAX);
        let dst_buf = self.upload(&dsts, u32::MAX);
        let out_buf = self.upload(&vec![0u32; pairs.len()], 0);

        self.dev.launch_tasks("edge_exist", pairs.len(), |warp| {
            let base = warp.warp_id() * WARP_SIZE as u32;
            let srcs = warp.read_slab(src_buf + base);
            let dsts = warp.read_slab(dst_buf + base);
            let mut pending = Lanes::from_fn(|i| warp.is_active(i));
            loop {
                let queue = warp.ballot(&pending);
                let Some(current_lane) = gpu_sim::ffs(queue) else {
                    break;
                };
                let current_src = warp.shuffle(&srcs, current_lane);
                let same_src = pending.zip_with(&srcs, |p, s| p && s == current_src);
                let group = warp.ballot(&same_src);
                let desc = self.dict.desc(warp, current_src);
                let mut results = Lanes::splat(false);
                if let Some(desc) = desc {
                    for lane in iter_bits(group) {
                        results.set(lane as usize, desc.contains(warp, dsts.get(lane as usize)));
                    }
                }
                let found = warp.ballot(&results);
                // Coalesced result write-back for the group.
                let addrs = Lanes::from_fn(|i| out_buf + base + i as u32);
                let vals = Lanes::from_fn(|i| (found >> i) & 1);
                warp.write_lanes(&addrs, &vals, group);
                pending = pending.zip_with(&same_src, |p, s| p && !s);
            }
        });

        (0..pairs.len())
            .map(|i| self.dev.arena().load(out_buf + i as u32) != 0)
            .collect()
    }

    /// Retrieve vertex `u`'s adjacency list as ⟨dst, weight⟩ pairs (weight
    /// is 0 for set graphs). Uses the slab iterator (§IV-B); order is the
    /// table's internal order, not sorted.
    pub fn neighbors(&self, pin: &ReadGuard, u: u32) -> Vec<(u32, u32)> {
        self.check_pin(pin);
        let Some(desc) = self.dict.desc_host(&self.dev, u) else {
            return vec![];
        };
        let out = parking_lot::Mutex::new(Vec::new());
        self.dev.launch_warps("neighbors", 1, |warp| {
            let mut local = Vec::new();
            match self.config.kind {
                TableKind::Map => desc.for_each_pair(warp, |k, v| local.push((k, v))),
                TableKind::Set => desc.for_each_key(warp, |k| local.push((k, 0))),
            }
            *out.lock() = local;
        });
        out.into_inner()
    }

    /// Destination-only adjacency list.
    pub fn neighbor_ids(&self, pin: &ReadGuard, u: u32) -> Vec<u32> {
        self.neighbors(pin, u).into_iter().map(|(d, _)| d).collect()
    }

    /// Allocation-free adjacency iteration: invoke `f` with every neighbour
    /// id of `u`, walking the slab list in table order. Charges exactly the
    /// same `neighbors` kernel work as [`Self::neighbors`] without building
    /// the intermediate `Vec` — the hot path for traversal algorithms.
    pub fn for_each_neighbor(&self, pin: &ReadGuard, u: u32, f: &mut (dyn FnMut(u32) + Send)) {
        self.check_pin(pin);
        let Some(desc) = self.dict.desc_host(&self.dev, u) else {
            return;
        };
        let f = parking_lot::Mutex::new(f);
        self.dev.launch_warps("neighbors", 1, |warp| {
            let mut f = f.lock();
            match self.config.kind {
                TableKind::Map => desc.for_each_pair(warp, |k, _| f(k)),
                TableKind::Set => desc.for_each_key(warp, &mut **f),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GraphConfig;
    use crate::graph::{DynGraph, Edge};

    fn graph_with_star() -> DynGraph {
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(64), 64, 1);
        let batch: Vec<Edge> = (1..40).map(|v| Edge::weighted(0, v, 100 + v)).collect();
        g.insert_edges(&batch);
        g
    }

    #[test]
    fn edges_exist_batch_mixed() {
        let g = graph_with_star();
        g.insert_edges(&[Edge::new(5, 6)]);
        let pin = g.pin_read();
        let res = g.edges_exist(&pin, &[(0, 1), (0, 39), (0, 40), (5, 6), (6, 5), (63, 0)]);
        assert_eq!(res, vec![true, true, false, true, false, false]);
    }

    #[test]
    fn edges_exist_large_batch() {
        let g = graph_with_star();
        let pin = g.pin_read();
        let pairs: Vec<(u32, u32)> = (0..200).map(|i| (0, i % 64)).collect();
        let res = g.edges_exist(&pin, &pairs);
        for (i, &(_, d)) in pairs.iter().enumerate() {
            assert_eq!(res[i], (1..40).contains(&d), "pair {i} dst {d}");
        }
    }

    #[test]
    fn neighbors_returns_all_pairs() {
        let g = graph_with_star();
        let pin = g.pin_read();
        let mut n = g.neighbors(&pin, 0);
        n.sort_unstable();
        let expect: Vec<(u32, u32)> = (1..40).map(|v| (v, 100 + v)).collect();
        assert_eq!(n, expect);
    }

    #[test]
    fn neighbors_of_untouched_vertex_is_empty() {
        let g = graph_with_star();
        let pin = g.pin_read();
        assert!(g.neighbors(&pin, 63).is_empty());
        assert!(g.neighbor_ids(&pin, 62).is_empty());
    }

    #[test]
    fn neighbors_reflect_deletions() {
        let g = graph_with_star();
        g.delete_edges(&[Edge::new(0, 1), Edge::new(0, 2)]);
        let pin = g.pin_read();
        let ids = g.neighbor_ids(&pin, 0);
        assert!(!ids.contains(&1));
        assert!(!ids.contains(&2));
        assert_eq!(ids.len(), 37);
    }

    #[test]
    fn empty_query_batch() {
        let g = graph_with_star();
        let pin = g.pin_read();
        assert!(g.edges_exist(&pin, &[]).is_empty());
    }

    #[test]
    fn set_graph_neighbors_have_zero_weights() {
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_set(8), 8, 1);
        g.insert_edges(&[Edge::new(1, 2), Edge::new(1, 3)]);
        let pin = g.pin_read();
        let mut n = g.neighbors(&pin, 1);
        n.sort_unstable();
        assert_eq!(n, vec![(2, 0), (3, 0)]);
    }

    #[test]
    fn pin_spanning_mutation_still_reads_current_state() {
        // A guard taken before a batch doesn't freeze the *data* — it only
        // protects reclamation. Reads through an old guard see the newest
        // published state (snapshot-at-walk, not snapshot-at-pin).
        let g = graph_with_star();
        let pin = g.pin_read();
        assert!(g.edge_exists(&pin, 0, 1));
        g.delete_edges(&[Edge::new(0, 1)]);
        assert!(!g.edge_exists(&pin, 0, 1));
        assert!(g.allocator().pinned_readers() >= 1);
        drop(pin);
        assert_eq!(g.allocator().pinned_readers(), 0);
    }

    #[test]
    fn guard_era_is_monotonic_across_batches() {
        let g = graph_with_star();
        let before = g.pin_read().era();
        g.insert_edges(&[Edge::new(40, 41)]);
        let after = g.pin_read().era();
        assert!(
            after > before,
            "mutation batches must advance the era ({before} → {after})"
        );
    }
}
