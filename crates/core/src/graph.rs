//! The dynamic graph structure itself (paper §III–IV).

use crate::batch::GraphError;
use crate::config::{Direction, GraphConfig};
use crate::dict::VertexDict;
use gpu_sim::{Addr, Device, DeviceConfig, ExecPolicy, OomError, Warp, SLAB_WORDS};
use slab_alloc::{AllocError, ReadGuard, SlabAllocator};
use slab_hash::{buckets_for, TableDesc, EMPTY_KEY, MAX_KEY};

/// A weighted directed edge ⟨src, dst, weight⟩. For set-kind graphs the
/// weight is ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    pub src: u32,
    pub dst: u32,
    pub weight: u32,
}

impl Edge {
    /// Unweighted edge (weight 0).
    pub fn new(src: u32, dst: u32) -> Self {
        Edge {
            src,
            dst,
            weight: 0,
        }
    }

    /// Weighted edge.
    pub fn weighted(src: u32, dst: u32, weight: u32) -> Self {
        Edge { src, dst, weight }
    }

    /// The same edge in the opposite direction (same weight).
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

impl From<(u32, u32)> for Edge {
    fn from((src, dst): (u32, u32)) -> Self {
        Edge::new(src, dst)
    }
}

impl From<(u32, u32, u32)> for Edge {
    fn from((src, dst, weight): (u32, u32, u32)) -> Self {
        Edge::weighted(src, dst, weight)
    }
}

/// The paper's dynamic graph: a vertex dictionary plus one slab hash table
/// per vertex adjacency list, over a simulated GPU.
///
/// All batched operations (edge/vertex insertion and deletion, queries) are
/// phase-concurrent kernels following the Warp Cooperative Work Sharing
/// strategy. See [`crate`] docs for an overview and the `edge_ops` /
/// `vertex_ops` / `query` modules for the algorithms.
pub struct DynGraph {
    pub(crate) dev: std::sync::Arc<Device>,
    pub(crate) alloc: SlabAllocator,
    pub(crate) dict: VertexDict,
    pub(crate) config: GraphConfig,
    /// Ids of deleted vertices available for reuse — the faimGraph
    /// feature the paper calls "straightforward to implement" (§VI-A3).
    pub(crate) free_ids: parking_lot::Mutex<Vec<u32>>,
}

impl DynGraph {
    /// Create an empty graph. Per-vertex hash tables are constructed
    /// lazily with a single bucket on first touch (paper §III-b: "if the
    /// connectivity information for a vertex is not available, we construct
    /// a hash table with a single bucket").
    pub fn new(config: GraphConfig) -> Self {
        let dev = Device::with_config(DeviceConfig {
            initial_words: config.device_words,
            capacity_words: config.device_capacity_words,
            policy: ExecPolicy::Sequential,
            ..DeviceConfig::default()
        });
        Self::on_device(std::sync::Arc::new(dev), config)
    }

    /// Create an empty graph on an existing device — the multi-shard path,
    /// where a `gpu_sim::DeviceGroup` owns the devices and each shard's
    /// graph co-owns its own. `config.device_words` /
    /// `device_capacity_words` are ignored here: the device was already
    /// sized by whoever built it.
    pub fn on_device(dev: std::sync::Arc<Device>, config: GraphConfig) -> Self {
        let alloc = SlabAllocator::new(&dev, config.pool_slabs);
        let dict = VertexDict::new(&dev, config.kind, config.vertex_capacity);
        DynGraph {
            dev,
            alloc,
            dict,
            config,
            free_ids: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Create a graph whose first `degrees.len()` vertices get hash tables
    /// sized from the given expected degrees (paper §III-b: connectivity
    /// information + load factor determine bucket counts; base slabs for
    /// *all* vertices are allocated in one bulk region, §IV-A2).
    pub fn with_degree_hints(config: GraphConfig, degrees: &[u32]) -> Self {
        let g = Self::new(config);
        g.install_tables(degrees);
        g
    }

    /// Create a graph where the first `n_vertices` vertices each get
    /// exactly `buckets` buckets — the incremental-build configuration
    /// (§V-B2: vertex bound known, edges unknown ⇒ one bucket each).
    pub fn with_uniform_buckets(config: GraphConfig, n_vertices: u32, buckets: u32) -> Self {
        let g = Self::new(config);
        g.install_uniform(n_vertices, buckets);
        g
    }

    /// Bulk-build from a COO edge list (§V-B1): degrees are counted on the
    /// host, base slabs are bulk-allocated, and all edges are inserted in
    /// one batch through the edge-insertion kernel.
    pub fn bulk_build(config: GraphConfig, edges: &[Edge]) -> Self {
        let g = Self::new(config);
        let _phase = g.dev.phase("bulk_build");
        let degrees = {
            let _p = g.dev.phase("bulk_build.degrees");
            let mut degrees = vec![0u32; g.config.vertex_capacity as usize];
            for e in edges {
                if e.src != e.dst {
                    if let Some(d) = degrees.get_mut(e.src as usize) {
                        *d += 1;
                    }
                    if g.config.direction == Direction::Undirected {
                        if let Some(d) = degrees.get_mut(e.dst as usize) {
                            *d += 1;
                        }
                    }
                }
            }
            degrees
        };
        {
            let _p = g.dev.phase("bulk_build.tables");
            g.install_tables(&degrees);
        }
        {
            let _p = g.dev.phase("bulk_build.insert");
            g.insert_edges(edges);
        }
        drop(_phase);
        g
    }

    /// Install tables for vertices `0..degrees.len()` sized by expected
    /// degree, bulk-allocating every base slab in one contiguous region.
    pub fn install_tables(&self, degrees: &[u32]) {
        assert!(
            degrees.len() as u64 <= self.dict.capacity() as u64,
            "degree hints exceed vertex capacity"
        );
        let buckets: Vec<u32> = degrees
            .iter()
            .map(|&d| buckets_for(d as usize, self.config.load_factor, self.config.kind))
            .collect();
        self.install_with_buckets(&buckets);
    }

    fn install_uniform(&self, n_vertices: u32, buckets: u32) {
        assert!(buckets >= 1);
        assert!(n_vertices <= self.dict.capacity());
        self.install_with_buckets(&vec![buckets; n_vertices as usize]);
    }

    fn install_with_buckets(&self, buckets: &[u32]) {
        let total: u64 = buckets.iter().map(|&b| b as u64).sum();
        let region = self
            .dev
            .alloc_words(total as usize * SLAB_WORDS, SLAB_WORDS);
        self.dev
            .memset("graph_init", region, total as usize * SLAB_WORDS, EMPTY_KEY);
        let mut cursor = region;
        for (v, &b) in buckets.iter().enumerate() {
            self.dict.install_host(&self.dev, v as u32, cursor, b);
            cursor += b * SLAB_WORDS as u32;
        }
    }

    /// The graph's configuration.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// The simulated device (for counters, cost models, and policy).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Mutable device access (to switch execution policy between phases).
    ///
    /// # Panics
    /// Panics if the device is co-owned (a graph built via
    /// [`Self::on_device`] whose `Arc` has other holders, e.g. a
    /// `DeviceGroup`): policy changes on a shared shard device must go
    /// through whoever owns the group.
    pub fn device_mut(&mut self) -> &mut Device {
        std::sync::Arc::get_mut(&mut self.dev)
            .expect("device_mut on a co-owned (sharded) device; change policy via the group")
    }

    /// The dynamic slab allocator backing collision slabs.
    pub fn allocator(&self) -> &SlabAllocator {
        &self.alloc
    }

    /// Pin the current era for snapshot reads. Every query method takes
    /// the returned [`ReadGuard`]; while it lives, no slab freed at or
    /// after the pinned era is recycled, so queries observe a consistent
    /// snapshot even while insert/delete batches land concurrently
    /// (paper-adjacent: the epoch discipline of Peri et al.'s concurrent
    /// graph, layered over the quarantine ring). Drop the guard promptly —
    /// a long-lived pin delays slab reclamation.
    pub fn pin_read(&self) -> ReadGuard {
        self.alloc.pin(&self.dev)
    }

    /// The vertex dictionary.
    pub fn dict(&self) -> &VertexDict {
        &self.dict
    }

    /// Current vertex capacity.
    pub fn vertex_capacity(&self) -> u32 {
        self.dict.capacity()
    }

    /// Ids of deleted vertices available for reuse by
    /// [`Self::take_reusable_id`] (paper §VI-A3: faimGraph's id-recycling
    /// strategy, implemented here as the paper suggests).
    pub fn reusable_ids(&self) -> Vec<u32> {
        self.free_ids.lock().clone()
    }

    /// Pop a reusable vertex id (its table is empty and ready), if any.
    pub fn take_reusable_id(&self) -> Option<u32> {
        self.free_ids.lock().pop()
    }

    /// Exact number of live edges (sum of per-vertex counts; for
    /// undirected graphs each edge is counted once per endpoint).
    pub fn num_edges(&self) -> u64 {
        (0..self.dict.capacity())
            .map(|v| self.dict.count_host(&self.dev, v) as u64)
            .sum()
    }

    /// Exact live-edge count of one vertex.
    pub fn degree(&self, v: u32) -> u32 {
        self.dict.count_host(&self.dev, v)
    }

    /// Host-side validation that a vertex id is storable.
    pub(crate) fn check_id(&self, v: u32) -> Result<(), GraphError> {
        if v > MAX_KEY {
            return Err(GraphError::InvalidVertexId { id: v, edge: None });
        }
        Ok(())
    }

    /// Validate both endpoints of an edge, reporting *which* edge
    /// referenced an unstorable vertex id.
    pub(crate) fn check_edge(&self, e: &Edge) -> Result<(), GraphError> {
        for id in [e.src, e.dst] {
            if id > MAX_KEY {
                return Err(GraphError::InvalidVertexId { id, edge: Some(*e) });
            }
        }
        Ok(())
    }

    /// Upload a `u32` buffer to device memory (slab-aligned, padded with
    /// `pad` to a multiple of 32). Host→device transfer is *not* charged,
    /// matching the paper's measurement methodology ("do not include the
    /// time required to transfer memory between CPU and GPU").
    pub(crate) fn upload(&self, data: &[u32], pad: u32) -> Addr {
        self.try_upload(data, pad)
            .unwrap_or_else(|e| panic!("host upload failed: {e}"))
    }

    /// Fallible [`Self::upload`]: reports device-budget exhaustion instead
    /// of panicking so batch staging can fail cleanly before any mutation.
    pub(crate) fn try_upload(&self, data: &[u32], pad: u32) -> Result<Addr, OomError> {
        let padded = data.len().div_ceil(SLAB_WORDS) * SLAB_WORDS;
        let buf = self
            .dev
            .try_alloc_words(padded.max(SLAB_WORDS), SLAB_WORDS)?;
        for (i, &w) in data.iter().enumerate() {
            self.dev.arena().store(buf + i as u32, w);
        }
        for i in data.len()..padded {
            self.dev.arena().store(buf + i as u32, pad);
        }
        Ok(buf)
    }

    /// Warp-side descriptor lookup that lazily constructs a single-bucket
    /// table for an untouched vertex (slab from the dynamic pool).
    ///
    /// Fails only if the pool cannot acquire the fresh slab; the failure
    /// precedes any dictionary mutation, so the vertex stays untouched and
    /// the operation can be retried.
    pub(crate) fn desc_or_create(&self, warp: &Warp, v: u32) -> Result<TableDesc, AllocError> {
        if let Some(t) = self.dict.desc(warp, v) {
            return Ok(t);
        }
        // Speculative: a sequential loser would have found the winner's
        // descriptor above, so a lost install race must leave no charges.
        warp.begin_attempt();
        let fresh = match self.alloc.try_allocate(warp) {
            Ok(fresh) => fresh,
            Err(e) => {
                warp.commit_attempt();
                return Err(e);
            }
        };
        match self.dict.try_install(warp, v, fresh, 1) {
            Ok(t) => {
                warp.commit_attempt();
                Ok(t)
            }
            Err(winner) => {
                warp.abort_attempt();
                warp.uncharged(|w| self.alloc.free(w, fresh))
                    .expect("freshly allocated slab must be freeable");
                Ok(winner)
            }
        }
    }

    /// Mirror a batch for undirected semantics: every ⟨u,v⟩ gains ⟨v,u⟩.
    pub(crate) fn apply_direction(&self, edges: &[Edge]) -> Vec<Edge> {
        match self.config.direction {
            Direction::Directed => edges.to_vec(),
            Direction::Undirected => {
                let mut out = Vec::with_capacity(edges.len() * 2);
                for &e in edges {
                    out.push(e);
                    out.push(e.reversed());
                }
                out
            }
        }
    }
}

/// Iterate the set bits of a warp mask in ascending lane order.
#[inline]
pub(crate) fn iter_bits(mask: u32) -> impl Iterator<Item = u32> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let b = m.trailing_zeros();
            m &= m - 1;
            Some(b)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphConfig;

    #[test]
    fn edge_constructors() {
        let e = Edge::weighted(1, 2, 9);
        assert_eq!(e.reversed(), Edge::weighted(2, 1, 9));
        assert_eq!(Edge::from((3u32, 4u32)), Edge::new(3, 4));
        assert_eq!(Edge::from((3u32, 4u32, 5u32)), Edge::weighted(3, 4, 5));
    }

    #[test]
    fn new_graph_is_empty() {
        let g = DynGraph::new(GraphConfig::directed_map(10));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.vertex_capacity(), 10);
        for v in 0..10 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn degree_hints_create_sized_tables() {
        let g = DynGraph::with_degree_hints(GraphConfig::directed_map(4), &[100, 0, 10, 1]);
        // lf=0.7, Bc=15 → 100 keys need ⌈100/10.5⌉=10 buckets.
        assert_eq!(g.dict().desc_host(g.device(), 0).unwrap().num_buckets, 10);
        assert_eq!(g.dict().desc_host(g.device(), 1).unwrap().num_buckets, 1);
        assert_eq!(g.dict().desc_host(g.device(), 2).unwrap().num_buckets, 1);
    }

    #[test]
    fn base_slabs_are_contiguous() {
        // §IV-A2: base slabs statically allocated in consecutive memory.
        let g = DynGraph::with_degree_hints(GraphConfig::directed_map(3), &[20, 20, 20]);
        let t0 = g.dict().desc_host(g.device(), 0).unwrap();
        let t1 = g.dict().desc_host(g.device(), 1).unwrap();
        let t2 = g.dict().desc_host(g.device(), 2).unwrap();
        assert_eq!(
            t1.base,
            t0.base + t0.num_buckets * SLAB_WORDS as u32,
            "vertex 1 base follows vertex 0"
        );
        assert_eq!(t2.base, t1.base + t1.num_buckets * SLAB_WORDS as u32);
    }

    #[test]
    fn uniform_buckets_builds_single_bucket_tables() {
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(8), 8, 1);
        for v in 0..8 {
            assert_eq!(g.dict().desc_host(g.device(), v).unwrap().num_buckets, 1);
        }
    }

    #[test]
    fn iter_bits_ascending() {
        let bits: Vec<u32> = iter_bits(0b1010_0110).collect();
        assert_eq!(bits, vec![1, 2, 5, 7]);
        assert_eq!(iter_bits(0).count(), 0);
        assert_eq!(iter_bits(u32::MAX).count(), 32);
    }

    #[test]
    fn apply_direction_mirrors_for_undirected() {
        let g = DynGraph::new(GraphConfig::undirected_map(4));
        let out = g.apply_direction(&[Edge::weighted(0, 1, 7)]);
        assert_eq!(out, vec![Edge::weighted(0, 1, 7), Edge::weighted(1, 0, 7)]);
        let g = DynGraph::new(GraphConfig::directed_map(4));
        assert_eq!(g.apply_direction(&[Edge::new(0, 1)]).len(), 1);
    }
}
