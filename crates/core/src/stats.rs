//! Graph-wide statistics: the measurements behind Fig. 2 (insertion rate /
//! memory utilization / memory usage vs. average chain length) and general
//! invariant checking in tests.

use crate::graph::DynGraph;
use gpu_sim::SLAB_WORDS;
use slab_hash::TableStats;

/// Aggregated statistics over every vertex's hash table plus the memory
/// footprint of the whole structure.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphStats {
    /// Merged per-table chain statistics.
    pub tables: TableStats,
    /// Words in statically allocated base slabs.
    pub base_slab_words: u64,
    /// Words in live dynamically allocated collision slabs.
    pub dynamic_slab_words: u64,
    /// Words in the vertex dictionary.
    pub dict_words: u64,
    /// Vertices with a constructed table.
    pub touched_vertices: u64,
}

impl GraphStats {
    /// Total device memory attributable to the graph, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.base_slab_words + self.dynamic_slab_words + self.dict_words) * 4
    }

    /// Fraction of key slots holding live keys (Fig. 2b).
    pub fn utilization(&self) -> f64 {
        self.tables.utilization()
    }

    /// Average bucket chain length in slabs (Fig. 2/3 x-axis).
    pub fn avg_chain(&self) -> f64 {
        self.tables.avg_chain()
    }
}

impl DynGraph {
    /// Collect [`GraphStats`] by walking every constructed table.
    ///
    /// Host-side instrumentation: runs as a kernel (so slab walks are
    /// charged) but is intended for use *between* measured phases.
    pub fn stats(&self) -> GraphStats {
        let cap = self.dict.capacity();
        let out = parking_lot::Mutex::new(GraphStats::default());
        self.dev.launch_warps("graph_stats", 1, |warp| {
            let mut agg = GraphStats::default();
            for v in 0..cap {
                if let Some(desc) = self.dict.desc_host(&self.dev, v) {
                    let s = desc.stats(warp);
                    agg.tables.merge(&s);
                    agg.touched_vertices += 1;
                    agg.base_slab_words += desc.num_buckets as u64 * SLAB_WORDS as u64;
                }
            }
            *out.lock() = agg;
        });
        let mut stats = out.into_inner();
        stats.dynamic_slab_words = self.alloc.live_slabs() * SLAB_WORDS as u64;
        stats.dict_words = self.dict.capacity() as u64 * crate::dict::ENTRY_WORDS as u64;
        stats
    }

    /// Debug-check the structure's core invariants; panics on violation.
    ///
    /// - the per-vertex edge count equals the number of live keys,
    /// - no table stores duplicate destinations,
    /// - no self-loops are stored.
    pub fn check_invariants(&self) {
        let cap = self.dict.capacity();
        self.dev.launch_warps("check_invariants", 1, |warp| {
            for v in 0..cap {
                let Some(desc) = self.dict.desc_host(&self.dev, v) else {
                    continue;
                };
                let mut seen = std::collections::HashSet::new();
                desc.for_each_key(warp, |k| {
                    assert!(seen.insert(k), "vertex {v}: duplicate destination {k}");
                    assert_ne!(k, v, "vertex {v}: stored self-loop");
                });
                let count = self.dict.count_host(&self.dev, v);
                assert_eq!(
                    count as usize,
                    seen.len(),
                    "vertex {v}: edge count {count} != live keys {}",
                    seen.len()
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GraphConfig;
    use crate::graph::{DynGraph, Edge};

    fn populated() -> DynGraph {
        let g = DynGraph::with_degree_hints(GraphConfig::directed_map(32), &[10u32; 32]);
        let batch: Vec<Edge> = (0..32u32)
            .flat_map(|u| (0..10u32).map(move |i| Edge::new(u, (u + i + 1) % 32)))
            .collect();
        g.insert_edges(&batch);
        g
    }

    #[test]
    fn stats_count_live_keys() {
        let g = populated();
        let s = g.stats();
        assert_eq!(s.tables.live_keys, g.num_edges());
        assert_eq!(s.touched_vertices, 32);
        assert!(s.memory_bytes() > 0);
        assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
    }

    #[test]
    fn invariants_hold_after_mixed_workload() {
        let g = populated();
        g.delete_edges(&[Edge::new(0, 1), Edge::new(5, 6)]);
        g.insert_edges(&[Edge::new(0, 20), Edge::new(0, 20)]);
        g.check_invariants();
    }

    #[test]
    fn higher_load_factor_uses_less_memory() {
        // Fig. 2c: memory usage decreases as chain length (load factor)
        // increases, because fewer buckets are allocated.
        let degrees = vec![50u32; 64];
        let build = |lf: f64| {
            let g = DynGraph::with_degree_hints(
                GraphConfig::directed_map(64).with_load_factor(lf),
                &degrees,
            );
            let batch: Vec<Edge> = (0..64u32)
                .flat_map(|u| (0..50u32).map(move |i| Edge::new(u, (u + i + 1) % 64)))
                .collect();
            g.insert_edges(&batch);
            g.stats()
        };
        let low = build(0.3);
        let high = build(2.0);
        assert!(
            high.memory_bytes() < low.memory_bytes(),
            "lf=2.0 ({} B) should use less memory than lf=0.3 ({} B)",
            high.memory_bytes(),
            low.memory_bytes()
        );
        assert!(
            high.utilization() > low.utilization(),
            "higher load factor packs slots more tightly"
        );
        assert!(high.avg_chain() > low.avg_chain());
    }

    #[test]
    #[should_panic(expected = "edge count")]
    fn invariant_check_detects_corruption() {
        let g = populated();
        // Corrupt an edge count behind the structure's back.
        g.device().arena().store(g.dict().count_addr(3), 999);
        g.check_invariants();
    }
}
