//! Graph-wide statistics: the measurements behind Fig. 2 (insertion rate /
//! memory utilization / memory usage vs. average chain length) and general
//! invariant checking in tests.

use crate::graph::DynGraph;
use gpu_sim::{Addr, NULL_ADDR, SLAB_WORDS, WARP_SIZE};
use slab_alloc::ReadGuard;
use slab_hash::{TableStats, EMPTY_KEY};

/// Aggregated statistics over every vertex's hash table plus the memory
/// footprint of the whole structure.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphStats {
    /// Merged per-table chain statistics.
    pub tables: TableStats,
    /// Words in statically allocated base slabs.
    pub base_slab_words: u64,
    /// Words in live dynamically allocated collision slabs.
    pub dynamic_slab_words: u64,
    /// Words in the vertex dictionary.
    pub dict_words: u64,
    /// Vertices with a constructed table.
    pub touched_vertices: u64,
}

impl GraphStats {
    /// Total device memory attributable to the graph, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.base_slab_words + self.dynamic_slab_words + self.dict_words) * 4
    }

    /// Fraction of key slots holding live keys (Fig. 2b).
    pub fn utilization(&self) -> f64 {
        self.tables.utilization()
    }

    /// Average bucket chain length in slabs (Fig. 2/3 x-axis).
    pub fn avg_chain(&self) -> f64 {
        self.tables.avg_chain()
    }
}

impl DynGraph {
    /// Collect [`GraphStats`] by walking every constructed table under a
    /// pinned [`ReadGuard`] — safe to run while update batches land.
    ///
    /// Host-side instrumentation: runs as a kernel (so slab walks are
    /// charged) but is intended for use *between* measured phases.
    pub fn stats(&self, pin: &ReadGuard) -> GraphStats {
        self.check_pin(pin);
        let cap = self.dict.capacity();
        let out = parking_lot::Mutex::new(GraphStats::default());
        self.dev.launch_warps("graph_stats", 1, |warp| {
            let mut agg = GraphStats::default();
            for v in 0..cap {
                if let Some(desc) = self.dict.desc_host(&self.dev, v) {
                    let s = desc.stats(warp);
                    agg.tables.merge(&s);
                    agg.touched_vertices += 1;
                    agg.base_slab_words += desc.num_buckets as u64 * SLAB_WORDS as u64;
                }
            }
            *out.lock() = agg;
        });
        let mut stats = out.into_inner();
        stats.dynamic_slab_words = self.alloc.live_slabs() * SLAB_WORDS as u64;
        stats.dict_words = self.dict.capacity() as u64 * crate::dict::ENTRY_WORDS as u64;
        stats
    }

    /// Debug-check the structure's core invariants; panics on violation.
    /// Delegates to [`Self::validate`] — use that directly for a typed,
    /// non-panicking report.
    pub fn check_invariants(&self) {
        if let Err(e) = self.validate() {
            panic!("graph invariant violated: {e}");
        }
    }

    /// Full consistency audit of the structure. Intended to be cheap
    /// enough to run after every recovered batch: a partial
    /// [`crate::BatchOutcome`] guarantees the graph still passes.
    ///
    /// Checks, in order of detection:
    /// - sanitizer findings: when the device carries a shadow-memory
    ///   sanitizer (see `gpu_sim::sanitizer`), any recorded race,
    ///   lifetime, or initialization violation fails the audit first;
    /// - epoch reclamation: the allocator's quarantine audit — the ring is
    ///   era-monotonic, quarantined slabs still hold their occupancy bit,
    ///   and no slab was recycled while a reader era ≤ its free era was
    ///   pinned;
    /// - slot accounting: every key slot classifies as exactly one of
    ///   live / tombstone / empty, and empty slots only appear in a
    ///   chain's tail slab (deletion writes tombstones, never empties);
    /// - no slab is linked into more than one chain position;
    /// - no table stores duplicate destinations or self-loops;
    /// - the per-vertex exact edge count equals the live (non-tombstoned)
    ///   keys actually stored;
    /// - every live pool slab is reachable from some table chain (no
    ///   leaks, including after failed or retried batches).
    pub fn validate(&self) -> Result<(), ValidationError> {
        if let Some(san) = self.dev.sanitizer() {
            let count = san.finding_count();
            if count > 0 {
                return Err(ValidationError::SanitizerFindings { count });
            }
        }
        if let Err(detail) = self.alloc.audit_quarantine(&self.dev) {
            return Err(ValidationError::EpochReclamation { detail });
        }
        // The structural walk itself runs under a pin: validation may run
        // while readers and writers are live, and its own chain walks must
        // not race reclamation.
        let _pin = self.pin_read();
        let cap = self.dict.capacity();
        let first: parking_lot::Mutex<Option<ValidationError>> = parking_lot::Mutex::new(None);
        let reachable = parking_lot::Mutex::new(std::collections::HashSet::new());
        self.dev.launch_warps("validate", 1, |warp| {
            for v in 0..cap {
                let Some(desc) = self.dict.desc_host(&self.dev, v) else {
                    continue;
                };
                let key_lanes = desc.kind.key_lanes();
                let mut seen = std::collections::HashSet::new();
                let mut live = 0u32;
                let mut err = None;
                desc.for_each_slab(warp, |view| {
                    if err.is_some() {
                        return;
                    }
                    if self.alloc.owns(view.addr) && !reachable.lock().insert(view.addr) {
                        err = Some(ValidationError::SlabReuse { addr: view.addr });
                        return;
                    }
                    let has_empty = (0..WARP_SIZE)
                        .any(|i| key_lanes & (1 << i) != 0 && view.words.get(i) == EMPTY_KEY);
                    if has_empty && view.next() != NULL_ADDR {
                        err = Some(ValidationError::EmptyBeforeTail {
                            vertex: v,
                            slab: view.addr,
                        });
                        return;
                    }
                    for k in view.keys() {
                        live += 1;
                        if k == v {
                            err = Some(ValidationError::SelfLoop { vertex: v });
                            return;
                        }
                        if !seen.insert(k) {
                            err = Some(ValidationError::DuplicateDestination { vertex: v, dst: k });
                            return;
                        }
                    }
                });
                if err.is_none() {
                    let count = self.dict.count_host(&self.dev, v);
                    if count != live {
                        err = Some(ValidationError::CountMismatch {
                            vertex: v,
                            count,
                            live,
                        });
                    }
                }
                if let Some(e) = err {
                    let mut slot = first.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    return;
                }
            }
        });
        if let Some(e) = first.into_inner() {
            return Err(e);
        }
        let reachable = reachable.into_inner().len() as u64;
        let live = self.alloc.live_slabs();
        if reachable != live {
            return Err(ValidationError::SlabLeak { reachable, live });
        }
        Ok(())
    }
}

/// A violated structural invariant reported by [`DynGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A vertex's exact edge count disagrees with its table's live keys.
    CountMismatch { vertex: u32, count: u32, live: u32 },
    /// A table stores the same destination twice.
    DuplicateDestination { vertex: u32, dst: u32 },
    /// A table stores its own vertex id.
    SelfLoop { vertex: u32 },
    /// A non-tail slab has empty key slots — deletion must tombstone.
    EmptyBeforeTail { vertex: u32, slab: Addr },
    /// The same pool slab is linked into more than one chain position.
    SlabReuse { addr: Addr },
    /// Live pool slabs and table-reachable pool slabs disagree (a slab
    /// leaked, or a freed slab is still linked).
    SlabLeak { reachable: u64, live: u64 },
    /// The device's shadow-memory sanitizer recorded violations.
    SanitizerFindings { count: u64 },
    /// The allocator's epoch-reclamation audit failed: a quarantined slab
    /// was recycled out from under a pinned reader, or the quarantine
    /// ring's bookkeeping is inconsistent.
    EpochReclamation { detail: String },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ValidationError::CountMismatch {
                vertex,
                count,
                live,
            } => write!(f, "vertex {vertex}: edge count {count} != live keys {live}"),
            ValidationError::DuplicateDestination { vertex, dst } => {
                write!(f, "vertex {vertex}: duplicate destination {dst}")
            }
            ValidationError::SelfLoop { vertex } => {
                write!(f, "vertex {vertex}: stored self-loop")
            }
            ValidationError::EmptyBeforeTail { vertex, slab } => write!(
                f,
                "vertex {vertex}: slab {slab:#x} has empty slots before the chain tail"
            ),
            ValidationError::SlabReuse { addr } => {
                write!(f, "slab {addr:#x} linked into more than one chain")
            }
            ValidationError::SlabLeak { reachable, live } => write!(
                f,
                "{live} live pool slabs but {reachable} reachable from tables"
            ),
            ValidationError::SanitizerFindings { count } => {
                write!(f, "sanitizer recorded {count} violation(s)")
            }
            ValidationError::EpochReclamation { ref detail } => {
                write!(f, "epoch reclamation invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use crate::config::GraphConfig;
    use crate::graph::{DynGraph, Edge};

    fn populated() -> DynGraph {
        let g = DynGraph::with_degree_hints(GraphConfig::directed_map(32), &[10u32; 32]);
        let batch: Vec<Edge> = (0..32u32)
            .flat_map(|u| (0..10u32).map(move |i| Edge::new(u, (u + i + 1) % 32)))
            .collect();
        g.insert_edges(&batch);
        g
    }

    #[test]
    fn stats_count_live_keys() {
        let g = populated();
        let s = g.stats(&g.pin_read());
        assert_eq!(s.tables.live_keys, g.num_edges());
        assert_eq!(s.touched_vertices, 32);
        assert!(s.memory_bytes() > 0);
        assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
    }

    #[test]
    fn stats_on_empty_graph() {
        // Regression guard: utilization() and avg_chain() divide by slot and
        // bucket totals that are all zero on a freshly created graph — both
        // must report 0.0, not NaN or a panic.
        let g = DynGraph::new(GraphConfig::directed_map(8));
        let s = g.stats(&g.pin_read());
        assert_eq!(s.tables.live_keys, 0);
        assert_eq!(s.touched_vertices, 0);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.avg_chain(), 0.0);
        // The zero-denominator guards hold at the per-table level too.
        let empty = slab_hash::TableStats::default();
        assert_eq!(empty.utilization(), 0.0);
        assert_eq!(empty.avg_chain(), 0.0);
    }

    #[test]
    fn invariants_hold_after_mixed_workload() {
        let g = populated();
        g.delete_edges(&[Edge::new(0, 1), Edge::new(5, 6)]);
        g.insert_edges(&[Edge::new(0, 20), Edge::new(0, 20)]);
        g.check_invariants();
    }

    #[test]
    fn higher_load_factor_uses_less_memory() {
        // Fig. 2c: memory usage decreases as chain length (load factor)
        // increases, because fewer buckets are allocated.
        let degrees = vec![50u32; 64];
        let build = |lf: f64| {
            let g = DynGraph::with_degree_hints(
                GraphConfig::directed_map(64).with_load_factor(lf),
                &degrees,
            );
            let batch: Vec<Edge> = (0..64u32)
                .flat_map(|u| (0..50u32).map(move |i| Edge::new(u, (u + i + 1) % 64)))
                .collect();
            g.insert_edges(&batch);
            g.stats(&g.pin_read())
        };
        let low = build(0.3);
        let high = build(2.0);
        assert!(
            high.memory_bytes() < low.memory_bytes(),
            "lf=2.0 ({} B) should use less memory than lf=0.3 ({} B)",
            high.memory_bytes(),
            low.memory_bytes()
        );
        assert!(
            high.utilization() > low.utilization(),
            "higher load factor packs slots more tightly"
        );
        assert!(high.avg_chain() > low.avg_chain());
    }

    #[test]
    #[should_panic(expected = "edge count")]
    fn invariant_check_detects_corruption() {
        let g = populated();
        // Corrupt an edge count behind the structure's back.
        g.device().arena().store(g.dict().count_addr(3), 999);
        g.check_invariants();
    }
}
