//! # slabgraph — dynamic graphs on the (simulated) GPU
//!
//! A faithful Rust reproduction of the data structure from **"Dynamic
//! Graphs on the GPU"** (Awad, Ashkiani, Porumbescu, Owens; 2020): a
//! dynamic graph whose per-vertex adjacency lists are *slab hash tables*,
//! giving O(1) edge queries and extremely high batched update rates while
//! guaranteeing edge uniqueness without any sorting.
//!
//! ## Structure (paper §III)
//!
//! - A **vertex dictionary**: a flat device array indexed by vertex id,
//!   holding per vertex a pointer to its hash table, its bucket count, and
//!   an exact live-edge count.
//! - One **slab hash** per vertex ([`slab_hash`]): map variant when edges
//!   carry weights, set variant otherwise. Base slabs for all vertices are
//!   allocated in one contiguous bulk region; collision slabs come from a
//!   warp-cooperative [`slab_alloc::SlabAllocator`].
//!
//! ## Operations
//!
//! | paper | here |
//! |---|---|
//! | Algorithm 1 (batched edge insertion) | [`DynGraph::insert_edges`] |
//! | batched edge deletion (§IV-C2) | [`DynGraph::delete_edges`] |
//! | vertex insertion (§IV-D1) | [`DynGraph::insert_vertices`] |
//! | Algorithm 2 (vertex deletion) | [`DynGraph::delete_vertices`] |
//! | `edgeExist` (§IV-B) | [`DynGraph::edge_exists`], [`DynGraph::edges_exist`] |
//! | adjacency iterator (§IV-B) | [`DynGraph::neighbors`] |
//! | bulk build (§V-B1) | [`DynGraph::bulk_build`] |
//! | incremental build (§V-B2) | [`DynGraph::with_uniform_buckets`] + batches |
//!
//! All operations run as phase-concurrent kernels over the [`gpu_sim`]
//! SIMT substrate and charge its transaction counters, from which the
//! benchmark harness derives modeled GPU time.
//!
//! ## Quickstart
//!
//! Queries run under an epoch-pinned [`ReadGuard`] (from
//! [`DynGraph::pin_read`]): while a guard is held, the slab allocator
//! recycles no slab freed at or after the pinned era, so reads stay
//! snapshot-consistent even while update batches land concurrently.
//!
//! ```
//! use slabgraph::{DynGraph, Edge, GraphConfig};
//!
//! // A directed weighted graph with capacity for 1024 vertices.
//! let g = DynGraph::new(GraphConfig::directed_map(1024));
//! g.insert_edges(&[
//!     Edge::weighted(0, 1, 10),
//!     Edge::weighted(0, 2, 20),
//!     Edge::weighted(1, 2, 30),
//! ]);
//! let pin = g.pin_read();
//! assert!(g.edge_exists(&pin, 0, 1));
//! assert_eq!(g.edge_weight(&pin, 1, 2), Some(30));
//! assert_eq!(g.num_edges(), 3);
//!
//! g.delete_edges(&[Edge::new(0, 1)]);
//! // The guard pins *reclamation*, not the data: reads see current state.
//! assert!(!g.edge_exists(&pin, 0, 1));
//! ```

mod batch;
mod config;
mod dict;
mod edge_ops;
mod graph;
mod maintenance;
mod query;
mod stats;
mod vertex_ops;

pub use batch::{BatchOp, BatchOutcome, GraphError};
pub use config::{Direction, GraphConfig, DEFAULT_LOAD_FACTOR};
pub use dict::{VertexDict, ENTRY_WORDS};
pub use graph::{DynGraph, Edge};
pub use stats::{GraphStats, ValidationError};

// Re-export the substrate types callers need for instrumentation and
// failure-model configuration.
pub use gpu_sim::{
    CostModel, CounterSnapshot, Device, DeviceConfig, ExecPolicy, FaultPlan, OomError,
};
pub use slab_alloc::{AllocError, PinRegistry, ReadGuard};
pub use slab_hash::{TableKind, TableStats};
