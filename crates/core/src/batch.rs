//! Batch outcomes and typed errors for recoverable operations.
//!
//! Every batched mutation has a fallible `try_*` form that reports, instead
//! of panicking, how far it got when the device runs out of memory (a
//! bounded [`gpu_sim::DeviceConfig`] budget, an exhausted slab pool, or an
//! injected [`gpu_sim::FaultPlan`] fault). A failed batch applies a
//! *prefix* of its work and returns the unapplied suffix in a
//! [`BatchOutcome`]; after raising the budget (or clearing the fault plan)
//! the caller resumes with [`DynGraph::retry_suffix`]. Because edge
//! insertion is idempotent (`replace` semantics) and allocation always
//! precedes table mutation, retrying a suffix — even one whose edges were
//! half-applied in an undirected batch — converges to exactly the state an
//! unconstrained run would have produced.

use crate::graph::{DynGraph, Edge};
use slab_alloc::AllocError;

/// Which batched operation produced a [`BatchOutcome`] — and therefore
/// which `try_*` operation [`DynGraph::retry_suffix`] will resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// [`DynGraph::try_insert_edges`].
    InsertEdges,
    /// [`DynGraph::try_delete_edges`].
    DeleteEdges,
    /// [`DynGraph::try_insert_vertices`].
    InsertVertices,
    /// [`DynGraph::try_delete_vertices`].
    DeleteVertices,
}

/// Typed error for graph operations.
///
/// Validation errors (`DuplicateVertex`, `InvalidVertexId`) are detected
/// *before* any mutation, so the graph is untouched when they are
/// returned. Allocation failures inside a running batch are not errors at
/// this level — they surface as a partial [`BatchOutcome`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id in an insertion batch already has a table (and is not
    /// awaiting recycling).
    DuplicateVertex { id: u32 },
    /// A vertex id collides with the slab-hash sentinel keys. When the id
    /// was referenced by an edge, `edge` identifies the offender.
    InvalidVertexId { id: u32, edge: Option<Edge> },
    /// An allocation failure outside the recoverable batch path (e.g.
    /// while building scratch structures for [`DynGraph::purge_deleted`]).
    Alloc(AllocError),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphError::DuplicateVertex { id } => write!(f, "vertex {id} already exists"),
            GraphError::InvalidVertexId { id, edge: Some(e) } => write!(
                f,
                "vertex id {id:#x} collides with slab-hash sentinels (referenced by edge {}\u{2192}{})",
                e.src, e.dst
            ),
            GraphError::InvalidVertexId { id, edge: None } => {
                write!(f, "vertex id {id:#x} collides with slab-hash sentinels")
            }
            GraphError::Alloc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AllocError> for GraphError {
    fn from(e: AllocError) -> Self {
        GraphError::Alloc(e)
    }
}

/// Per-batch completion report.
///
/// `attempted` counts the caller's items (original edges before undirected
/// mirroring, plus vertex ids for vertex batches); `completed` counts the
/// items fully applied. The invariant
/// `completed + pending.len() + pending_vertices.len() == attempted`
/// always holds, and order within `pending` / `pending_vertices` matches
/// the original batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The operation that produced this outcome.
    pub op: BatchOp,
    /// Items in the batch as submitted.
    pub attempted: usize,
    /// Items fully applied (for undirected edges: both half-edges).
    pub completed: usize,
    /// Structural changes made (new edges inserted / edges deleted),
    /// summed over direction-mirrored copies — the value the infallible
    /// wrappers return.
    pub changed: u64,
    /// Edges not (fully) applied, in batch order. Feed back through
    /// [`DynGraph::retry_suffix`].
    pub pending: Vec<Edge>,
    /// Vertex ids not yet installed (vertex batches only).
    pub pending_vertices: Vec<u32>,
    /// The first allocation failure observed, if any.
    pub error: Option<AllocError>,
}

impl BatchOutcome {
    pub(crate) fn complete(op: BatchOp, attempted: usize, changed: u64) -> Self {
        BatchOutcome {
            op,
            attempted,
            completed: attempted,
            changed,
            pending: Vec::new(),
            pending_vertices: Vec::new(),
            error: None,
        }
    }

    /// Whether every item in the batch was applied.
    pub fn is_complete(&self) -> bool {
        self.pending.is_empty() && self.pending_vertices.is_empty()
    }
}

impl DynGraph {
    /// Resume a partially applied batch: re-run the unapplied suffix
    /// reported in `outcome`. Call after growing the device budget
    /// ([`gpu_sim::Device::set_capacity_words`]) or clearing the fault
    /// plan; returns the next outcome, which may itself be partial.
    ///
    /// Re-running an edge that was half-applied (one direction of an
    /// undirected pair) is safe: insertion has replace semantics and
    /// deletion of an absent key is a no-op, and neither is counted in
    /// `changed` again.
    pub fn retry_suffix(&self, outcome: &BatchOutcome) -> Result<BatchOutcome, GraphError> {
        if let Some(p) = self.device().profiler() {
            p.metrics().record(
                "batch.retry_suffix_ops",
                (outcome.pending.len() + outcome.pending_vertices.len()) as u64,
            );
        }
        match outcome.op {
            BatchOp::InsertEdges => self.try_insert_edges(&outcome.pending),
            BatchOp::DeleteEdges => self.try_delete_edges(&outcome.pending),
            BatchOp::InsertVertices => {
                self.try_insert_vertices(&outcome.pending_vertices, &outcome.pending)
            }
            BatchOp::DeleteVertices => self.try_delete_vertices(&outcome.pending_vertices),
        }
    }
}
