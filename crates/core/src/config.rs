//! Graph construction configuration.

use slab_hash::TableKind;

/// Default load factor — the paper's experimentally optimal value (§VI-D,
/// Fig. 3: "our data structure achieves its optimal performance when the
/// load factor is around 0.7").
pub const DEFAULT_LOAD_FACTOR: f64 = 0.7;

/// Directedness of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Edge ⟨u,v⟩ only updates `A_u`.
    Directed,
    /// Edge ⟨u,v⟩ updates both `A_u` and `A_v` (paper §IV-C).
    Undirected,
}

/// Configuration for a [`crate::DynGraph`].
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    /// Map (weighted edges) or set (destinations only) adjacency tables.
    pub kind: TableKind,
    /// Directed or undirected edge semantics.
    pub direction: Direction,
    /// Number of vertex slots pre-allocated in the vertex dictionary.
    /// Exceeding it triggers a (shallow) dictionary reallocation.
    pub vertex_capacity: u32,
    /// Hash-table load factor used to size per-vertex bucket counts.
    pub load_factor: f64,
    /// Initial words of simulated device memory to commit.
    pub device_words: usize,
    /// Optional hard budget on total device words. `None` (the default)
    /// means unbounded; with a budget set, allocations past it fail and
    /// batched operations return partial [`crate::BatchOutcome`]s instead
    /// of panicking. Can be raised later via
    /// [`gpu_sim::Device::set_capacity_words`].
    pub device_capacity_words: Option<u64>,
    /// Initial dynamic-pool capacity in slabs.
    pub pool_slabs: usize,
    /// Use the paper's alternative two-stage insertion that overwrites
    /// tombstones (§IV-C2): better memory reuse, lower insertion
    /// throughput (the full chain is always traversed). Default: off,
    /// matching the paper's measured configuration.
    pub recycle_tombstones: bool,
}

impl GraphConfig {
    /// A directed, weighted (map) graph with the given vertex capacity and
    /// paper-default load factor.
    pub fn directed_map(vertex_capacity: u32) -> Self {
        GraphConfig {
            kind: TableKind::Map,
            direction: Direction::Directed,
            vertex_capacity,
            load_factor: DEFAULT_LOAD_FACTOR,
            device_words: 1 << 22,
            device_capacity_words: None,
            pool_slabs: 1 << 12,
            recycle_tombstones: false,
        }
    }

    /// An undirected, weighted (map) graph.
    pub fn undirected_map(vertex_capacity: u32) -> Self {
        GraphConfig {
            direction: Direction::Undirected,
            ..Self::directed_map(vertex_capacity)
        }
    }

    /// A directed, unweighted (set) graph.
    pub fn directed_set(vertex_capacity: u32) -> Self {
        GraphConfig {
            kind: TableKind::Set,
            ..Self::directed_map(vertex_capacity)
        }
    }

    /// An undirected, unweighted (set) graph — the variant the paper uses
    /// for triangle counting (§VI-C1).
    pub fn undirected_set(vertex_capacity: u32) -> Self {
        GraphConfig {
            kind: TableKind::Set,
            direction: Direction::Undirected,
            ..Self::directed_map(vertex_capacity)
        }
    }

    /// Override the load factor (Fig. 2/3 sweeps).
    pub fn with_load_factor(mut self, lf: f64) -> Self {
        assert!(lf > 0.0, "load factor must be positive");
        self.load_factor = lf;
        self
    }

    /// Override the initial device memory commitment.
    pub fn with_device_words(mut self, words: usize) -> Self {
        self.device_words = words;
        self
    }

    /// Bound total device memory to `words` (see
    /// [`Self::device_capacity_words`]).
    pub fn with_device_capacity(mut self, words: u64) -> Self {
        self.device_capacity_words = Some(words);
        self
    }

    /// Override the initial dynamic slab-pool size.
    pub fn with_pool_slabs(mut self, slabs: usize) -> Self {
        self.pool_slabs = slabs;
        self
    }

    /// Enable tombstone-recycling insertion (§IV-C2's memory-optimised
    /// alternative; see the `ablation_tombstones` bench).
    pub fn with_tombstone_recycling(mut self) -> Self {
        self.recycle_tombstones = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        let c = GraphConfig::directed_map(100);
        assert_eq!(c.kind, TableKind::Map);
        assert_eq!(c.direction, Direction::Directed);
        assert_eq!(c.vertex_capacity, 100);
        assert_eq!(c.load_factor, DEFAULT_LOAD_FACTOR);

        let c = GraphConfig::undirected_set(5);
        assert_eq!(c.kind, TableKind::Set);
        assert_eq!(c.direction, Direction::Undirected);
    }

    #[test]
    fn with_load_factor_overrides() {
        let c = GraphConfig::directed_map(10).with_load_factor(1.5);
        assert_eq!(c.load_factor, 1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_load_factor_rejected() {
        let _ = GraphConfig::directed_map(10).with_load_factor(0.0);
    }
}
