//! Batched edge insertion and deletion — the paper's Algorithm 1.
//!
//! Each thread (lane) owns one edge. A warp-level work queue built from a
//! `ballot` repeatedly elects the first unfinished lane, broadcasts its
//! source vertex with a `shuffle`, and groups every lane holding the same
//! source so their updates hit the same hash table in coalesced fashion.
//! The slab-hash `replace` / `delete` return booleans; a `popc` over their
//! ballot maintains exact per-vertex edge counts (Algorithm 1, line 10).

use crate::batch::{BatchOp, BatchOutcome, GraphError};
use crate::graph::{iter_bits, DynGraph, Edge};
use gpu_sim::{Lanes, OomError, WARP_SIZE};
use slab_alloc::AllocError;
use slab_hash::TableKind;

/// What a batch kernel should do with each edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeOp {
    Insert,
    Delete,
}

impl DynGraph {
    /// Batched edge insertion (§IV-C1, Algorithm 1).
    ///
    /// Duplicates are permitted both within the batch and against the graph;
    /// the structure keeps unique destinations per vertex, retaining the most
    /// recent weight (`replace` semantics). Self-loops are skipped. For
    /// undirected graphs the reverse edges are inserted in the same batch.
    ///
    /// Returns the number of edges that were *new* (not replacements),
    /// summed over direction-mirrored copies. Panics if device memory runs
    /// out; use [`Self::try_insert_edges`] to recover instead.
    pub fn insert_edges(&self, edges: &[Edge]) -> u64 {
        let outcome = self
            .try_insert_edges(edges)
            .unwrap_or_else(|e| panic!("insert_edges: {e}"));
        Self::expect_complete("insert_edges", outcome)
    }

    /// Batched edge deletion (§IV-C2).
    ///
    /// Deletion tombstones the destination key in the source's table; the
    /// returned boolean per edge decrements the exact edge count. Returns
    /// the number of edges actually deleted. Panics if device memory runs
    /// out; use [`Self::try_delete_edges`] to recover instead.
    pub fn delete_edges(&self, edges: &[Edge]) -> u64 {
        let outcome = self
            .try_delete_edges(edges)
            .unwrap_or_else(|e| panic!("delete_edges: {e}"));
        Self::expect_complete("delete_edges", outcome)
    }

    /// Fallible [`Self::insert_edges`]: on device-memory exhaustion (a
    /// bounded budget or an injected fault) a *prefix* of the batch is
    /// applied and the unapplied suffix is reported in the returned
    /// [`BatchOutcome`] for [`Self::retry_suffix`].
    pub fn try_insert_edges(&self, edges: &[Edge]) -> Result<BatchOutcome, GraphError> {
        self.run_edge_kernel(edges, EdgeOp::Insert)
    }

    /// Fallible [`Self::delete_edges`]. Deletion itself never allocates,
    /// but staging the batch on the device can exhaust a bounded budget.
    pub fn try_delete_edges(&self, edges: &[Edge]) -> Result<BatchOutcome, GraphError> {
        self.run_edge_kernel(edges, EdgeOp::Delete)
    }

    fn expect_complete(what: &str, outcome: BatchOutcome) -> u64 {
        if let Some(e) = outcome.error {
            panic!(
                "{what}: device memory exhausted after {} of {} edges: {e}",
                outcome.completed, outcome.attempted
            );
        }
        outcome.changed
    }

    /// Shared WCWS kernel for insert/delete.
    ///
    /// Takes the batch as the caller submitted it (before undirected
    /// mirroring) so partial outcomes report the caller's own edges.
    fn run_edge_kernel(&self, original: &[Edge], op: EdgeOp) -> Result<BatchOutcome, GraphError> {
        let batch_op = match op {
            EdgeOp::Insert => BatchOp::InsertEdges,
            EdgeOp::Delete => BatchOp::DeleteEdges,
        };
        if original.is_empty() {
            return Ok(BatchOutcome::complete(batch_op, 0, 0));
        }
        for e in original {
            self.check_edge(e)?;
        }
        let work = self.apply_direction(original);
        let per_edge = work.len() / original.len();
        let n = work.len();

        // Stage the batch on the device. A failure here applies nothing:
        // the whole batch is the pending suffix.
        let staged = (|| -> Result<_, OomError> {
            let srcs: Vec<u32> = work.iter().map(|e| e.src).collect();
            let dsts: Vec<u32> = work.iter().map(|e| e.dst).collect();
            let src_buf = self.try_upload(&srcs, u32::MAX)?;
            let dst_buf = self.try_upload(&dsts, u32::MAX)?;
            let weight_buf = if self.config.kind == TableKind::Map {
                let ws: Vec<u32> = work.iter().map(|e| e.weight).collect();
                Some(self.try_upload(&ws, 0)?)
            } else {
                None
            };
            let changed_total = self.dev.try_alloc_words(1, 1)?;
            self.dev.arena().store(changed_total, 0);
            // One status word per work item: 0 = unapplied, 1 = applied.
            let status_buf = self.dev.try_alloc_words(n, 1)?;
            for i in 0..n as u32 {
                self.dev.arena().store(status_buf + i, 0);
            }
            Ok((src_buf, dst_buf, weight_buf, changed_total, status_buf))
        })();
        let (src_buf, dst_buf, weight_buf, changed_total, status_buf) = match staged {
            Ok(bufs) => bufs,
            Err(e) => {
                return Ok(BatchOutcome {
                    op: batch_op,
                    attempted: original.len(),
                    completed: 0,
                    changed: 0,
                    pending: original.to_vec(),
                    pending_vertices: Vec::new(),
                    error: Some(AllocError::Oom(e)),
                })
            }
        };

        let kernel_name = match op {
            EdgeOp::Insert => "edge_insert",
            EdgeOp::Delete => "edge_delete",
        };
        let _phase = self.dev.phase(match op {
            EdgeOp::Insert => "edge_insert_batch",
            EdgeOp::Delete => "edge_delete_batch",
        });
        // First allocation failure observed inside the kernel, if any.
        let first_err: parking_lot::Mutex<Option<AllocError>> = parking_lot::Mutex::new(None);
        let record = |e: AllocError| {
            let mut slot = first_err.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        };
        self.dev.launch_tasks(kernel_name, n, |warp| {
            let base = warp.warp_id() * WARP_SIZE as u32;
            // Coalesced loads of this warp's 32 edges.
            let srcs = warp.read_slab(src_buf + base);
            let dsts = warp.read_slab(dst_buf + base);
            let weights = weight_buf
                .map(|wb| warp.read_slab(wb + base))
                .unwrap_or_default();
            // Status writes are bookkeeping for the host-side outcome, not
            // part of the modelled kernel: uncharged so per-kernel
            // attribution is unchanged by the recovery machinery.
            let mark = |i: usize| self.dev.arena().store(status_buf + base + i as u32, 1);

            // Line 3: no self-edges (skipping one counts as applying it).
            let mut pending = Lanes::from_fn(|i| warp.is_active(i) && srcs.get(i) != dsts.get(i));
            for i in 0..WARP_SIZE {
                if warp.is_active(i) && srcs.get(i) == dsts.get(i) {
                    mark(i);
                }
            }

            // Lines 4–14: warp work queue.
            loop {
                let work_queue = warp.ballot(&pending);
                let Some(current_lane) = gpu_sim::ffs(work_queue) else {
                    break;
                };
                let current_src = warp.shuffle(&srcs, current_lane);
                let same_src = pending.zip_with(&srcs, |p, s| p && s == current_src);
                let group = warp.ballot(&same_src);

                let desc = match op {
                    EdgeOp::Insert => match self.desc_or_create(warp, current_src) {
                        Ok(d) => d,
                        Err(e) => {
                            // Lazy table construction failed: the whole
                            // group stays unapplied (statuses remain 0).
                            record(e);
                            pending = pending.zip_with(&same_src, |p, s| p && !s);
                            continue;
                        }
                    },
                    EdgeOp::Delete => match self.dict.desc(warp, current_src) {
                        Some(d) => d,
                        None => {
                            // Nothing to delete from an untouched vertex.
                            for lane in iter_bits(group) {
                                mark(lane as usize);
                            }
                            pending = pending.zip_with(&same_src, |p, s| p && !s);
                            continue;
                        }
                    },
                };

                // Lines 8–9: coalesced group operation + success ballot.
                // A lane whose insert fails on allocation leaves its status
                // at 0; later lanes still run (under e.g. an every-Nth
                // fault plan some of them succeed, guaranteeing progress).
                let mut success = Lanes::splat(false);
                for lane in iter_bits(group) {
                    let li = lane as usize;
                    let applied = match op {
                        EdgeOp::Insert if self.config.recycle_tombstones => {
                            desc.insert_recycling(warp, &self.alloc, dsts.get(li), weights.get(li))
                        }
                        EdgeOp::Insert => match self.config.kind {
                            TableKind::Map => {
                                desc.replace(warp, &self.alloc, dsts.get(li), weights.get(li))
                            }
                            TableKind::Set => desc.insert_unique(warp, &self.alloc, dsts.get(li)),
                        },
                        EdgeOp::Delete => Ok(desc.delete(warp, dsts.get(li))),
                    };
                    match applied {
                        Ok(changed) => {
                            success.set(li, changed);
                            mark(li);
                        }
                        Err(e) => record(e),
                    }
                }

                // Line 10: exact count via popc(ballot(success)).
                let added_count = gpu_sim::popc(warp.ballot(&success));
                if added_count > 0 {
                    let count_addr = self.dict.count_addr(current_src);
                    match op {
                        EdgeOp::Insert => {
                            warp.atomic_add(count_addr, added_count);
                        }
                        EdgeOp::Delete => {
                            warp.atomic_sub(count_addr, added_count);
                        }
                    }
                    warp.atomic_add(changed_total, added_count);
                }

                // Lines 11–13: retire the completed group.
                pending = pending.zip_with(&same_src, |p, s| p && !s);
            }
        });
        // Batch boundary: publish this batch's frees (the release edge of
        // the epoch protocol). Readers pinning after this point do not
        // cover slabs the batch quarantined, so those slabs become
        // reclaimable as soon as all older pins drop.
        self.dev.advance_era();

        // An edge is complete only when every direction-mirrored copy was
        // applied; half-applied undirected edges go back in the suffix
        // (re-inserting the applied half is an uncounted replace/no-op).
        let changed = self.dev.arena().load(changed_total) as u64;
        let mut pending_edges = Vec::new();
        for (j, &e) in original.iter().enumerate() {
            let applied = (0..per_edge).all(|k| {
                self.dev
                    .arena()
                    .load(status_buf + (j * per_edge + k) as u32)
                    != 0
            });
            if !applied {
                pending_edges.push(e);
            }
        }
        Ok(BatchOutcome {
            op: batch_op,
            attempted: original.len(),
            completed: original.len() - pending_edges.len(),
            changed,
            pending: pending_edges,
            pending_vertices: Vec::new(),
            error: first_err.into_inner(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphConfig;

    fn graph(cap: u32) -> DynGraph {
        DynGraph::with_uniform_buckets(GraphConfig::directed_map(cap), cap, 1)
    }

    #[test]
    fn insert_single_edge() {
        let g = graph(4);
        assert_eq!(g.insert_edges(&[Edge::weighted(0, 1, 5)]), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(&g.pin_read(), 0, 1), Some(5));
    }

    #[test]
    fn self_loops_are_skipped() {
        let g = graph(4);
        assert_eq!(g.insert_edges(&[Edge::new(2, 2)]), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_edges_in_batch_stored_once() {
        let g = graph(4);
        let batch = vec![
            Edge::weighted(0, 1, 1),
            Edge::weighted(0, 1, 2),
            Edge::weighted(0, 1, 3),
        ];
        let added = g.insert_edges(&batch);
        assert_eq!(added, 1, "one unique edge");
        assert_eq!(g.degree(0), 1, "exact count maintained");
        // The surviving weight is one of the batch's weights (the batch is
        // unordered on a GPU; with the sequential executor it is the last
        // group member processed).
        let w = g.edge_weight(&g.pin_read(), 0, 1).unwrap();
        assert!((1..=3).contains(&w));
    }

    #[test]
    fn duplicates_against_graph_replace_weight() {
        let g = graph(4);
        g.insert_edges(&[Edge::weighted(1, 2, 10)]);
        let added = g.insert_edges(&[Edge::weighted(1, 2, 99)]);
        assert_eq!(added, 0, "replacement is not a new edge");
        assert_eq!(g.degree(1), 1);
        assert_eq!(
            g.edge_weight(&g.pin_read(), 1, 2),
            Some(99),
            "most recent weight kept"
        );
    }

    #[test]
    fn batch_larger_than_one_warp() {
        let cap = 100u32;
        let g = graph(cap);
        let batch: Vec<Edge> = (0..cap)
            .flat_map(|u| {
                (0..cap)
                    .filter(move |&v| v != u)
                    .map(move |v| Edge::new(u, v))
            })
            .collect();
        let added = g.insert_edges(&batch);
        assert_eq!(added, (cap as u64) * (cap as u64 - 1));
        for v in 0..cap {
            assert_eq!(g.degree(v), cap - 1, "vertex {v}");
        }
    }

    #[test]
    fn mixed_sources_within_one_warp_group_correctly() {
        let g = graph(8);
        // 32 edges alternating between 4 sources → the work-queue loop must
        // group each source's lanes together.
        let batch: Vec<Edge> = (0..32u32)
            .map(|i| Edge::weighted(i % 4, 4 + (i / 4) % 4, i))
            .collect();
        g.insert_edges(&batch);
        for src in 0..4 {
            assert_eq!(g.degree(src), 4, "source {src} has 4 unique dsts");
        }
    }

    #[test]
    fn delete_removes_and_counts() {
        let g = graph(4);
        g.insert_edges(&[Edge::new(0, 1), Edge::new(0, 2), Edge::new(0, 3)]);
        let removed = g.delete_edges(&[Edge::new(0, 2)]);
        assert_eq!(removed, 1);
        assert_eq!(g.degree(0), 2);
        assert!(!g.edge_exists(&g.pin_read(), 0, 2));
        assert!(g.edge_exists(&g.pin_read(), 0, 1));
    }

    #[test]
    fn deleting_absent_edge_is_noop() {
        let g = graph(4);
        g.insert_edges(&[Edge::new(0, 1)]);
        assert_eq!(g.delete_edges(&[Edge::new(0, 3)]), 0);
        assert_eq!(g.delete_edges(&[Edge::new(2, 1)]), 0, "untouched source");
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn duplicate_deletes_in_batch_count_once() {
        let g = graph(4);
        g.insert_edges(&[Edge::new(0, 1)]);
        let removed = g.delete_edges(&[Edge::new(0, 1), Edge::new(0, 1)]);
        assert_eq!(removed, 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn undirected_inserts_both_directions() {
        let g = DynGraph::with_uniform_buckets(GraphConfig::undirected_map(4), 4, 1);
        let added = g.insert_edges(&[Edge::weighted(0, 1, 7)]);
        assert_eq!(added, 2, "both half-edges new");
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
        assert!(g.edge_exists(&g.pin_read(), 0, 1));
        assert!(g.edge_exists(&g.pin_read(), 1, 0));
        let removed = g.delete_edges(&[Edge::new(1, 0)]);
        assert_eq!(removed, 2, "undirected delete removes both half-edges");
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn set_variant_ignores_weights() {
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_set(4), 4, 1);
        assert_eq!(g.insert_edges(&[Edge::weighted(0, 1, 42)]), 1);
        assert_eq!(g.insert_edges(&[Edge::weighted(0, 1, 43)]), 0);
        assert!(g.edge_exists(&g.pin_read(), 0, 1));
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn insert_after_delete_reinserts() {
        let g = graph(4);
        g.insert_edges(&[Edge::weighted(0, 1, 1)]);
        g.delete_edges(&[Edge::new(0, 1)]);
        let added = g.insert_edges(&[Edge::weighted(0, 1, 2)]);
        assert_eq!(added, 1, "tombstoned key reinserted as new");
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.edge_weight(&g.pin_read(), 0, 1), Some(2));
    }

    #[test]
    fn lazy_vertex_table_creation_on_insert() {
        // A graph built with NO pre-installed tables: first insert must
        // construct a single-bucket table from the dynamic pool.
        let g = DynGraph::new(GraphConfig::directed_map(4));
        assert!(g.dict().desc_host(g.device(), 0).is_none());
        g.insert_edges(&[Edge::new(0, 1)]);
        let t = g.dict().desc_host(g.device(), 0).unwrap();
        assert_eq!(t.num_buckets, 1);
        assert!(g.edge_exists(&g.pin_read(), 0, 1));
    }

    #[test]
    fn empty_batch_is_noop() {
        let g = graph(4);
        assert_eq!(g.insert_edges(&[]), 0);
        assert_eq!(g.delete_edges(&[]), 0);
    }

    #[test]
    fn high_degree_vertex_chains_slabs() {
        let g = DynGraph::with_uniform_buckets(GraphConfig::directed_map(2000), 2000, 1);
        let batch: Vec<Edge> = (1..1000).map(|v| Edge::weighted(0, v, v)).collect();
        g.insert_edges(&batch);
        assert_eq!(g.degree(0), 999);
        let pin = g.pin_read();
        for v in (1..1000).step_by(97) {
            assert_eq!(g.edge_weight(&pin, 0, v), Some(v), "dst {v}");
        }
        assert!(g.allocator().live_slabs() >= 60, "chained many slabs");
    }
}
