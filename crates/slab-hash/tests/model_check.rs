//! Property-based model checking of the slab hash against `BTreeMap` /
//! `BTreeSet` references under arbitrary operation streams.

use gpu_sim::Device;
use proptest::prelude::*;
use slab_alloc::SlabAllocator;
use slab_hash::{buckets_for, TableDesc, TableKind};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum MapOp {
    Replace(u32, u32),
    Delete(u32),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        3 => ((0..200u32), (0..1000u32)).prop_map(|(k, v)| MapOp::Replace(k, v)),
        1 => (0..200u32).prop_map(MapOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn map_matches_btreemap(ops in proptest::collection::vec(map_op(), 1..120),
                            buckets in 1..6u32) {
        let dev = Device::new(1 << 18);
        let alloc = SlabAllocator::new(&dev, 1024);
        let table = TableDesc::create(&dev, TableKind::Map, buckets);
        let reference = parking_lot::Mutex::new(BTreeMap::<u32, u32>::new());

        let result = parking_lot::Mutex::new(Ok(()));
        dev.launch_warps(1, |warp| {
            let mut reference = reference.lock();
            let mut check = || -> Result<(), TestCaseError> {
                for op in &ops {
                    match *op {
                        MapOp::Replace(k, v) => {
                            let added = table.replace(warp, &alloc, k, v);
                            let was_new = reference.insert(k, v).is_none();
                            prop_assert_eq!(added, was_new, "replace({}, {})", k, v);
                        }
                        MapOp::Delete(k) => {
                            let removed = table.delete(warp, k);
                            prop_assert_eq!(removed, reference.remove(&k).is_some(),
                                            "delete({})", k);
                        }
                    }
                }
                // Final state equality via search and iteration.
                for k in 0..200u32 {
                    prop_assert_eq!(table.search(warp, k), reference.get(&k).copied());
                }
                let mut iterated = BTreeMap::new();
                table.for_each_pair(warp, |k, v| {
                    iterated.insert(k, v);
                });
                prop_assert_eq!(&iterated, &*reference);
                Ok(())
            };
            *result.lock() = check();
        });
        result.into_inner()?;
    }

    #[test]
    fn set_matches_btreeset(keys in proptest::collection::vec(0..100u32, 1..150),
                            deletions in proptest::collection::vec(0..100u32, 0..40)) {
        let dev = Device::new(1 << 18);
        let alloc = SlabAllocator::new(&dev, 1024);
        let buckets = buckets_for(keys.len(), 0.7, TableKind::Set);
        let table = TableDesc::create(&dev, TableKind::Set, buckets);
        let reference = parking_lot::Mutex::new(BTreeSet::<u32>::new());

        let result = parking_lot::Mutex::new(Ok(()));
        dev.launch_warps(1, |warp| {
            let mut reference = reference.lock();
            let mut check = || -> Result<(), TestCaseError> {
                for &k in &keys {
                    prop_assert_eq!(table.insert_unique(warp, &alloc, k),
                                    reference.insert(k));
                }
                for &k in &deletions {
                    prop_assert_eq!(table.delete(warp, k), reference.remove(&k));
                }
                for k in 0..100u32 {
                    prop_assert_eq!(table.contains(warp, k), reference.contains(&k),
                                    "contains({})", k);
                }
                let mut iterated = BTreeSet::new();
                table.for_each_key(warp, |k| {
                    iterated.insert(k);
                });
                prop_assert_eq!(&iterated, &*reference);
                Ok(())
            };
            *result.lock() = check();
        });
        result.into_inner()?;
    }

    #[test]
    fn stats_live_keys_always_match(keys in proptest::collection::vec(0..500u32, 1..200)) {
        let dev = Device::new(1 << 18);
        let alloc = SlabAllocator::new(&dev, 1024);
        let table = TableDesc::create(&dev, TableKind::Map, 3);
        let unique: BTreeSet<u32> = keys.iter().copied().collect();

        let stats = parking_lot::Mutex::new(None);
        dev.launch_warps(1, |warp| {
            for &k in &keys {
                table.replace(warp, &alloc, k, k);
            }
            *stats.lock() = Some(table.stats(warp));
        });
        let stats = stats.into_inner().unwrap();
        prop_assert_eq!(stats.live_keys, unique.len() as u64);
        prop_assert_eq!(stats.tombstones, 0);
        prop_assert!(stats.utilization() <= 1.0);
    }
}
