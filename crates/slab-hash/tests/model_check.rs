//! Randomized model checking of the slab hash against `BTreeMap` /
//! `BTreeSet` references under arbitrary operation streams. Each test runs
//! many independently seeded cases; seeds are fixed so failures reproduce.

use gpu_sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slab_alloc::SlabAllocator;
use slab_hash::{buckets_for, TableDesc, TableKind};
use std::collections::{BTreeMap, BTreeSet};

const CASES: u64 = 32;

#[derive(Debug, Clone)]
enum MapOp {
    Replace(u32, u32),
    Delete(u32),
}

fn map_ops(rng: &mut StdRng) -> Vec<MapOp> {
    let n = rng.random_range(1..120usize);
    (0..n)
        .map(|_| {
            // 3:1 replace:delete, matching the original generator weights.
            if rng.random_range(0..4u32) < 3 {
                MapOp::Replace(rng.random_range(0..200u32), rng.random_range(0..1000u32))
            } else {
                MapOp::Delete(rng.random_range(0..200u32))
            }
        })
        .collect()
}

#[test]
fn map_matches_btreemap() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA110 + seed);
        let ops = map_ops(&mut rng);
        let buckets = rng.random_range(1..6u32);
        let dev = Device::new(1 << 18);
        let alloc = SlabAllocator::new(&dev, 1024);
        let table = TableDesc::create(&dev, TableKind::Map, buckets);
        let reference = parking_lot::Mutex::new(BTreeMap::<u32, u32>::new());

        dev.launch_warps("model_check", 1, |warp| {
            let mut reference = reference.lock();
            for op in &ops {
                match *op {
                    MapOp::Replace(k, v) => {
                        let added = table.replace(warp, &alloc, k, v).unwrap();
                        let was_new = reference.insert(k, v).is_none();
                        assert_eq!(added, was_new, "seed {seed}: replace({k}, {v})");
                    }
                    MapOp::Delete(k) => {
                        let removed = table.delete(warp, k);
                        assert_eq!(
                            removed,
                            reference.remove(&k).is_some(),
                            "seed {seed}: delete({k})"
                        );
                    }
                }
            }
            // Final state equality via search and iteration.
            for k in 0..200u32 {
                assert_eq!(
                    table.search(warp, k),
                    reference.get(&k).copied(),
                    "seed {seed}: search({k})"
                );
            }
            let mut iterated = BTreeMap::new();
            table.for_each_pair(warp, |k, v| {
                iterated.insert(k, v);
            });
            assert_eq!(&iterated, &*reference, "seed {seed}: iteration");
        });
    }
}

#[test]
fn set_matches_btreeset() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E7 + seed);
        let n_keys = rng.random_range(1..150usize);
        let keys: Vec<u32> = (0..n_keys).map(|_| rng.random_range(0..100u32)).collect();
        let n_del = rng.random_range(0..40usize);
        let deletions: Vec<u32> = (0..n_del).map(|_| rng.random_range(0..100u32)).collect();

        let dev = Device::new(1 << 18);
        let alloc = SlabAllocator::new(&dev, 1024);
        let buckets = buckets_for(keys.len(), 0.7, TableKind::Set);
        let table = TableDesc::create(&dev, TableKind::Set, buckets);
        let reference = parking_lot::Mutex::new(BTreeSet::<u32>::new());

        dev.launch_warps("model_check", 1, |warp| {
            let mut reference = reference.lock();
            for &k in &keys {
                assert_eq!(
                    table.insert_unique(warp, &alloc, k).unwrap(),
                    reference.insert(k),
                    "seed {seed}: insert_unique({k})"
                );
            }
            for &k in &deletions {
                assert_eq!(
                    table.delete(warp, k),
                    reference.remove(&k),
                    "seed {seed}: delete({k})"
                );
            }
            for k in 0..100u32 {
                assert_eq!(
                    table.contains(warp, k),
                    reference.contains(&k),
                    "seed {seed}: contains({k})"
                );
            }
            let mut iterated = BTreeSet::new();
            table.for_each_key(warp, |k| {
                iterated.insert(k);
            });
            assert_eq!(&iterated, &*reference, "seed {seed}: iteration");
        });
    }
}

#[test]
fn stats_live_keys_always_match() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57A7 + seed);
        let n_keys = rng.random_range(1..200usize);
        let keys: Vec<u32> = (0..n_keys).map(|_| rng.random_range(0..500u32)).collect();
        let unique: BTreeSet<u32> = keys.iter().copied().collect();

        let dev = Device::new(1 << 18);
        let alloc = SlabAllocator::new(&dev, 1024);
        let table = TableDesc::create(&dev, TableKind::Map, 3);

        let stats = parking_lot::Mutex::new(None);
        dev.launch_warps("model_check", 1, |warp| {
            for &k in &keys {
                table.replace(warp, &alloc, k, k).unwrap();
            }
            *stats.lock() = Some(table.stats(warp));
        });
        let stats = stats.into_inner().unwrap();
        assert_eq!(stats.live_keys, unique.len() as u64, "seed {seed}");
        assert_eq!(stats.tombstones, 0, "seed {seed}");
        assert!(stats.utilization() <= 1.0, "seed {seed}");
    }
}
