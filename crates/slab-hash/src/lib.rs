//! # slab-hash — warp-cooperative hash tables (SlabHash workalike)
//!
//! The paper stores each vertex's adjacency list in a *slab hash* (Ashkiani
//! et al., "A dynamic hash table for the GPU", IPDPS 2018), extended with
//! key-uniqueness (`replace`), iterators, and a new **concurrent set**
//! variant. This crate reproduces those tables over the simulated device.
//!
//! A table is `num_buckets` bucket chains. Each chain is a singly linked
//! list of 128-byte slabs (32 `u32` words):
//!
//! ```text
//! map slab:  lanes 0..30 hold 15 ⟨key,value⟩ pairs (key on even lane),
//!            lane 30 reserved, lane 31 = next-slab pointer
//! set slab:  lanes 0..30 hold 30 keys, lane 30 reserved, lane 31 = next
//! ```
//!
//! so the **bucket capacity per slab** `Bc` is 15 (map) or 30 (set),
//! matching §IV-A2 of the paper. The *base slabs* (one per bucket) are
//! allocated in bulk, contiguously; collision slabs come from the
//! [`slab_alloc::SlabAllocator`].
//!
//! All operations are warp-cooperative: the whole warp reads one slab in a
//! single coalesced transaction, ballots over its lanes, and elects lanes to
//! perform atomics. Uniqueness under concurrent same-key insertion holds
//! because claims always CAS the *first* empty slot of the chain and retry
//! on failure: the loser re-reads the slab and finds the winner's key.
//!
//! Sentinels: [`EMPTY_KEY`] marks a never-used slot, [`TOMBSTONE_KEY`] a
//! deleted one. Deleted slots are *not* reused by later insertions (paper
//! §IV-C2): empties therefore only exist at the tail of a chain, which is
//! what makes search early-exit and uniqueness sound.

use gpu_sim::{Addr, Device, Lanes, Warp, NULL_ADDR, SLAB_WORDS, WARP_SIZE};
use slab_alloc::SlabAllocator;

pub use slab_alloc::AllocError;

/// Slot never written. Keys must be `< TOMBSTONE_KEY`.
pub const EMPTY_KEY: u32 = u32::MAX;
/// Slot whose key was deleted. Ignored by queries, skipped by inserts.
pub const TOMBSTONE_KEY: u32 = u32::MAX - 1;
/// Largest storable key.
pub const MAX_KEY: u32 = u32::MAX - 2;

/// Lane index holding the next-slab pointer.
pub const NEXT_LANE: usize = 31;
/// Lane reserved for future metadata (kept to match the paper's layout).
pub const RESERVED_LANE: usize = 30;

/// Keys per slab for the map variant (pairs on lanes 0..30).
pub const MAP_SLAB_KEYS: usize = 15;
/// Keys per slab for the set variant (lanes 0..30).
pub const SET_SLAB_KEYS: usize = 30;

/// Bit set for every even lane `< 30`: the key lanes of a map slab.
const MAP_KEY_LANES: u32 = 0x1555_5555;
/// Bit set for every lane `< 30`: the key lanes of a set slab.
const SET_KEY_LANES: u32 = 0x3FFF_FFFF;

/// Which slab-hash variant a table is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// ⟨key, value⟩ pairs — used when edges carry weights/meta-data.
    Map,
    /// Keys only — used when only destinations matter (e.g. triangle
    /// counting), doubling per-slab capacity.
    Set,
}

impl TableKind {
    /// Bucket capacity per slab (`Bc` in the paper): 15 for map, 30 for set.
    #[inline]
    pub fn slab_capacity(self) -> usize {
        match self {
            TableKind::Map => MAP_SLAB_KEYS,
            TableKind::Set => SET_SLAB_KEYS,
        }
    }

    /// Bitmask of the lanes that hold keys in a slab of this kind (the
    /// complement holds values / the next pointer). Public so auditors can
    /// classify every slot as live, tombstone, or empty.
    #[inline]
    pub fn key_lanes(self) -> u32 {
        match self {
            TableKind::Map => MAP_KEY_LANES,
            TableKind::Set => SET_KEY_LANES,
        }
    }
}

/// Number of buckets for an expected key count at a given load factor:
/// `⌈n / (lf × Bc)⌉`, minimum 1 (paper §IV-A2).
pub fn buckets_for(expected_keys: usize, load_factor: f64, kind: TableKind) -> u32 {
    assert!(load_factor > 0.0, "load factor must be positive");
    let per_bucket = load_factor * kind.slab_capacity() as f64;
    ((expected_keys as f64 / per_bucket).ceil() as u32).max(1)
}

/// A slab hash table descriptor: where the base slabs live and how many
/// buckets there are. Pure value type — all table state is in device
/// memory, so descriptors can be rebuilt inside kernels from words stored
/// in a vertex dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableDesc {
    pub kind: TableKind,
    /// Address of bucket 0's base slab; bucket *i* is at `base + 32·i`.
    pub base: Addr,
    pub num_buckets: u32,
}

/// One slab's worth of data plus its address, yielded by iteration.
#[derive(Debug, Clone, Copy)]
pub struct SlabView {
    pub addr: Addr,
    pub words: Lanes<u32>,
    pub kind: TableKind,
}

impl SlabView {
    /// The next-slab pointer ([`NULL_ADDR`] at end of chain).
    #[inline]
    pub fn next(&self) -> Addr {
        self.words.get(NEXT_LANE)
    }

    /// Live keys stored in this slab (skipping empties and tombstones).
    pub fn keys(&self) -> impl Iterator<Item = u32> + '_ {
        let lanes = self.kind.key_lanes();
        (0..WARP_SIZE).filter_map(move |i| {
            if lanes & (1 << i) != 0 {
                let k = self.words.get(i);
                (k < TOMBSTONE_KEY).then_some(k)
            } else {
                None
            }
        })
    }

    /// Live ⟨key, value⟩ pairs (map slabs only; values are the odd lanes).
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        assert_eq!(self.kind, TableKind::Map, "pairs() requires a map slab");
        (0..MAP_SLAB_KEYS).filter_map(move |p| {
            let k = self.words.get(2 * p);
            (k < TOMBSTONE_KEY).then(|| (k, self.words.get(2 * p + 1)))
        })
    }

    /// Per-lane key validity mask (bit *i* set iff lane *i* holds a live
    /// key) — the form Algorithm 2's warp loop consumes.
    pub fn valid_mask(&self) -> u32 {
        let mut m = 0u32;
        let lanes = self.kind.key_lanes();
        for i in 0..WARP_SIZE {
            if lanes & (1 << i) != 0 && self.words.get(i) < TOMBSTONE_KEY {
                m |= 1 << i;
            }
        }
        m
    }
}

/// Hash a key to a bucket. SlabHash uses universal hashing
/// `((a·k + b) mod p) mod B`; we fix one well-mixed (a, b) pair for
/// determinism across runs (a per-table pair changes nothing measured here).
#[inline]
pub fn bucket_of(key: u32, num_buckets: u32) -> u32 {
    // 32-bit finaliser (murmur3-style) — full avalanche, then reduce.
    let mut h = key;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^= h >> 16;
    h % num_buckets
}

/// Record the number of slabs a lookup walked before answering. Metrics
/// never charge counters: with no profiler attached this is a no-op.
#[inline]
fn note_probe_depth(warp: &Warp, depth: u64) {
    if let Some(p) = warp.device().profiler() {
        p.metrics().record("slab_hash.probe_depth", depth);
    }
}

/// Record the chain position (in slabs) where a new key landed.
#[inline]
fn note_chain_at_insert(warp: &Warp, depth: u64) {
    if let Some(p) = warp.device().profiler() {
        p.metrics().record("slab_hash.chain_at_insert", depth);
    }
}

/// Record one chain-walk restart caused by next-pointer skew.
#[inline]
fn note_walk_restart(warp: &Warp) {
    if let Some(p) = warp.device().profiler() {
        p.metrics().record("slab_hash.walk_restarts", 1);
    }
}

/// Bound on validation-triggered walk restarts before a walk proceeds
/// unvalidated. A reader holding a `ReadGuard` is always safe to finish on
/// the chain it is on (the pinned era keeps every observed slab's bytes
/// intact); re-probing merely trades that stale-but-consistent snapshot
/// for a fresher one, so giving up after a few rounds of skew is sound.
const MAX_WALK_RESTARTS: u32 = 8;

impl TableDesc {
    /// Device words required for the base slabs of `num_buckets` buckets.
    pub fn base_words(num_buckets: u32) -> usize {
        num_buckets as usize * SLAB_WORDS
    }

    /// Allocate and initialise a standalone table (host-side helper used
    /// by unit tests and examples; the graph bulk-allocates base slabs for
    /// all vertices at once instead — see `slabgraph`).
    pub fn create(dev: &Device, kind: TableKind, num_buckets: u32) -> TableDesc {
        assert!(num_buckets >= 1);
        let base = dev.alloc_words(Self::base_words(num_buckets), SLAB_WORDS);
        dev.memset("table_init", base, Self::base_words(num_buckets), EMPTY_KEY);
        TableDesc {
            kind,
            base,
            num_buckets,
        }
    }

    /// Base-slab address of `bucket`.
    #[inline]
    pub fn bucket_addr(&self, bucket: u32) -> Addr {
        debug_assert!(bucket < self.num_buckets);
        self.base + bucket * SLAB_WORDS as u32
    }

    // ---------------------------------------------------------------
    // Map operations
    // ---------------------------------------------------------------

    /// Insert-or-replace (the paper's new `replace` operation, §IV-C1).
    ///
    /// If `key` exists its value is overwritten and `Ok(false)` is
    /// returned; otherwise the pair is written into the first empty slot
    /// (allocating a chained slab if needed) and `Ok(true)` is returned.
    /// The boolean drives the caller's exact edge counting.
    ///
    /// Fails only when chain growth cannot acquire a slab. Allocation
    /// happens strictly *before* any table mutation, so on `Err` the table
    /// is untouched: still fully queryable, deletable, and retryable.
    pub fn replace(
        &self,
        warp: &Warp,
        alloc: &SlabAllocator,
        key: u32,
        value: u32,
    ) -> Result<bool, AllocError> {
        assert_eq!(self.kind, TableKind::Map);
        debug_assert!(key <= MAX_KEY, "key {key:#x} collides with sentinels");
        let mut slab_addr = self.bucket_addr(bucket_of(key, self.num_buckets));
        let mut depth = 1u64;
        // Each probe step is speculative: on a lost claim race the step's
        // charges are discarded and the step re-runs, so the committed
        // profile is the sequential one (losers simply probe after winners).
        loop {
            warp.begin_attempt();
            let words = warp.read_slab(slab_addr);
            // Lane-parallel key compare + ballot.
            let found = warp.ballot(&Lanes::from_fn(|i| {
                MAP_KEY_LANES & (1 << i) != 0 && words.get(i) == key
            }));
            if let Some(lane) = gpu_sim::ffs(found) {
                // Key exists: replace the value (lane+1 is the value word).
                warp.atomic_exchange(slab_addr + lane + 1, value);
                warp.commit_attempt();
                return Ok(false);
            }
            let empties = warp.ballot(&Lanes::from_fn(|i| {
                MAP_KEY_LANES & (1 << i) != 0 && words.get(i) == EMPTY_KEY
            }));
            if let Some(lane) = gpu_sim::ffs(empties) {
                // Claim the first empty slot; on a lost race re-read the
                // slab (the winner may have inserted this very key).
                if warp.atomic_cas(slab_addr + lane, EMPTY_KEY, key).is_ok() {
                    // The value must be *atomically* published: a reader
                    // that saw the claimed key in its own slab fetch may
                    // load this value word concurrently, and the key CAS
                    // orders the key word only.
                    warp.atomic_exchange(slab_addr + lane + 1, value);
                    warp.commit_attempt();
                    note_chain_at_insert(warp, depth);
                    return Ok(true);
                }
                warp.abort_attempt();
                continue;
            }
            let step = self.advance_or_grow(warp, alloc, slab_addr, &words);
            warp.commit_attempt();
            slab_addr = step?;
            depth += 1;
        }
    }

    /// Look up `key`, returning its value if present.
    ///
    /// The chain walk is *snapshot-consistent* under concurrent mutation:
    /// every hop past a slab re-validates that slab's next pointer (one
    /// extra word read per hop, none for the single-slab common case) and
    /// re-probes from the bucket on version skew — e.g. a concurrent
    /// `free_dynamic_slabs` cutting the chain back to its base slab.
    pub fn search(&self, warp: &Warp, key: u32) -> Option<u32> {
        assert_eq!(self.kind, TableKind::Map);
        let bucket = self.bucket_addr(bucket_of(key, self.num_buckets));
        let mut restarts = 0u32;
        'walk: loop {
            let mut slab_addr = bucket;
            let mut parent: Option<Addr> = None;
            let mut depth = 1u64;
            loop {
                let words = warp.read_slab(slab_addr);
                if let Some(p) = parent {
                    if warp.read_word(p + NEXT_LANE as u32) != slab_addr
                        && restarts < MAX_WALK_RESTARTS
                    {
                        restarts += 1;
                        note_walk_restart(warp);
                        continue 'walk;
                    }
                }
                let found = warp.ballot(&Lanes::from_fn(|i| {
                    MAP_KEY_LANES & (1 << i) != 0 && words.get(i) == key
                }));
                if let Some(lane) = gpu_sim::ffs(found) {
                    note_probe_depth(warp, depth);
                    return Some(words.get(lane as usize + 1));
                }
                let empties = warp.ballot(&Lanes::from_fn(|i| {
                    MAP_KEY_LANES & (1 << i) != 0 && words.get(i) == EMPTY_KEY
                }));
                if empties != 0 {
                    // Empties only exist at the tail ⇒ key is absent.
                    note_probe_depth(warp, depth);
                    return None;
                }
                let next = words.get(NEXT_LANE);
                if next == NULL_ADDR {
                    note_probe_depth(warp, depth);
                    return None;
                }
                parent = Some(slab_addr);
                slab_addr = next;
                depth += 1;
            }
        }
    }

    // ---------------------------------------------------------------
    // Set operations
    // ---------------------------------------------------------------

    /// Insert `key` if absent (concurrent-set variant). Returns `Ok(true)`
    /// if the key was added, `Ok(false)` if it already existed.
    ///
    /// Same failure contract as [`Self::replace`]: on `Err` the table is
    /// untouched.
    pub fn insert_unique(
        &self,
        warp: &Warp,
        alloc: &SlabAllocator,
        key: u32,
    ) -> Result<bool, AllocError> {
        assert_eq!(self.kind, TableKind::Set);
        debug_assert!(key <= MAX_KEY, "key {key:#x} collides with sentinels");
        let mut slab_addr = self.bucket_addr(bucket_of(key, self.num_buckets));
        let mut depth = 1u64;
        loop {
            warp.begin_attempt();
            let words = warp.read_slab(slab_addr);
            let found = warp.ballot(&Lanes::from_fn(|i| {
                SET_KEY_LANES & (1 << i) != 0 && words.get(i) == key
            }));
            if found != 0 {
                warp.commit_attempt();
                return Ok(false);
            }
            let empties = warp.ballot(&Lanes::from_fn(|i| {
                SET_KEY_LANES & (1 << i) != 0 && words.get(i) == EMPTY_KEY
            }));
            if let Some(lane) = gpu_sim::ffs(empties) {
                if warp.atomic_cas(slab_addr + lane, EMPTY_KEY, key).is_ok() {
                    warp.commit_attempt();
                    note_chain_at_insert(warp, depth);
                    return Ok(true);
                }
                warp.abort_attempt();
                continue;
            }
            let step = self.advance_or_grow(warp, alloc, slab_addr, &words);
            warp.commit_attempt();
            slab_addr = step?;
            depth += 1;
        }
    }

    /// Membership query (`edgeExist`'s primitive). Snapshot-consistent
    /// under concurrent mutation — same validated-hop protocol as
    /// [`Self::search`].
    pub fn contains(&self, warp: &Warp, key: u32) -> bool {
        let key_lanes = self.kind.key_lanes();
        let bucket = self.bucket_addr(bucket_of(key, self.num_buckets));
        let mut restarts = 0u32;
        'walk: loop {
            let mut slab_addr = bucket;
            let mut parent: Option<Addr> = None;
            let mut depth = 1u64;
            loop {
                let words = warp.read_slab(slab_addr);
                if let Some(p) = parent {
                    if warp.read_word(p + NEXT_LANE as u32) != slab_addr
                        && restarts < MAX_WALK_RESTARTS
                    {
                        restarts += 1;
                        note_walk_restart(warp);
                        continue 'walk;
                    }
                }
                let found = warp.ballot(&Lanes::from_fn(|i| {
                    key_lanes & (1 << i) != 0 && words.get(i) == key
                }));
                if found != 0 {
                    note_probe_depth(warp, depth);
                    return true;
                }
                let empties = warp.ballot(&Lanes::from_fn(|i| {
                    key_lanes & (1 << i) != 0 && words.get(i) == EMPTY_KEY
                }));
                if empties != 0 {
                    note_probe_depth(warp, depth);
                    return false;
                }
                let next = words.get(NEXT_LANE);
                if next == NULL_ADDR {
                    note_probe_depth(warp, depth);
                    return false;
                }
                parent = Some(slab_addr);
                slab_addr = next;
                depth += 1;
            }
        }
    }

    /// The paper's *alternative* insertion strategy (§IV-C2): a two-stage
    /// insert that first traverses the whole chain to ensure uniqueness,
    /// then **overwrites the first tombstone** if one exists (falling back
    /// to the first empty slot otherwise). Trades insertion throughput
    /// (no early exit; the full chain is always read) for memory reuse.
    /// Works for both variants; `value` is ignored for sets.
    ///
    /// Returns `Ok(true)` iff the key was newly added. Same failure
    /// contract as [`Self::replace`]: on `Err` the table is untouched.
    pub fn insert_recycling(
        &self,
        warp: &Warp,
        alloc: &SlabAllocator,
        key: u32,
        value: u32,
    ) -> Result<bool, AllocError> {
        debug_assert!(key <= MAX_KEY, "key {key:#x} collides with sentinels");
        let key_lanes = self.kind.key_lanes();
        let is_map = self.kind == TableKind::Map;
        'retry: loop {
            // The whole two-stage attempt is speculative: a lost claim race
            // aborts it and the rescan charges what a sequential loser would.
            warp.begin_attempt();
            // Stage 1: full-chain scan for the key, remembering the first
            // tombstone and the first empty slot.
            let mut slab_addr = self.bucket_addr(bucket_of(key, self.num_buckets));
            let mut first_tombstone: Option<Addr> = None;
            let mut first_empty: Option<Addr> = None;
            let tail_addr;
            loop {
                let words = warp.read_slab(slab_addr);
                let found = warp.ballot(&Lanes::from_fn(|i| {
                    key_lanes & (1 << i) != 0 && words.get(i) == key
                }));
                if let Some(lane) = gpu_sim::ffs(found) {
                    if is_map {
                        warp.atomic_exchange(slab_addr + lane + 1, value);
                    }
                    warp.commit_attempt();
                    return Ok(false);
                }
                let tombs = warp.ballot(&Lanes::from_fn(|i| {
                    key_lanes & (1 << i) != 0 && words.get(i) == TOMBSTONE_KEY
                }));
                if first_tombstone.is_none() {
                    if let Some(lane) = gpu_sim::ffs(tombs) {
                        first_tombstone = Some(slab_addr + lane);
                    }
                }
                let empties = warp.ballot(&Lanes::from_fn(|i| {
                    key_lanes & (1 << i) != 0 && words.get(i) == EMPTY_KEY
                }));
                if first_empty.is_none() {
                    if let Some(lane) = gpu_sim::ffs(empties) {
                        first_empty = Some(slab_addr + lane);
                    }
                }
                let next = words.get(NEXT_LANE);
                if empties != 0 || next == NULL_ADDR {
                    // Empties only exist at the tail: the scan is complete.
                    tail_addr = slab_addr;
                    break;
                }
                slab_addr = next;
            }
            // Stage 2: claim the first tombstone, else the first empty,
            // else grow the chain. Retry the whole operation on any lost
            // race (the winner may have inserted this very key).
            let target = first_tombstone.or(first_empty);
            if let Some(addr) = target {
                let expected = if first_tombstone.is_some() {
                    TOMBSTONE_KEY
                } else {
                    EMPTY_KEY
                };
                if warp.atomic_cas(addr, expected, key).is_ok() {
                    if is_map {
                        // Atomic publication — same reasoning as the
                        // EMPTY-claim path in `replace`.
                        warp.atomic_exchange(addr + 1, value);
                    }
                    warp.commit_attempt();
                    return Ok(true);
                }
                warp.abort_attempt();
                continue 'retry;
            }
            // Chain full with no tombstones: link a fresh slab.
            let words = warp.read_slab(tail_addr);
            let grown = self.advance_or_grow(warp, alloc, tail_addr, &words);
            warp.commit_attempt();
            grown?;
        }
    }

    // ---------------------------------------------------------------
    // Shared operations
    // ---------------------------------------------------------------

    /// Delete `key` by tombstoning it (§IV-C2). Returns `true` iff this
    /// call deleted it (drives exact edge-count decrements). Tombstones
    /// are not removed and not overwritten by later insertions.
    pub fn delete(&self, warp: &Warp, key: u32) -> bool {
        let key_lanes = self.kind.key_lanes();
        let bucket = self.bucket_addr(bucket_of(key, self.num_buckets));
        let mut restarts = 0u32;
        'walk: loop {
            let mut slab_addr = bucket;
            let mut parent: Option<Addr> = None;
            loop {
                warp.begin_attempt();
                let words = warp.read_slab(slab_addr);
                if let Some(p) = parent {
                    // Validated hop (see `search`): a skewed link means a
                    // concurrent chain cut; re-probe from the bucket so
                    // the tombstone lands in the live chain, not a
                    // detached one. Skew never occurs sequentially, so
                    // the aborted iteration's charges are discarded.
                    if warp.read_word(p + NEXT_LANE as u32) != slab_addr
                        && restarts < MAX_WALK_RESTARTS
                    {
                        restarts += 1;
                        note_walk_restart(warp);
                        warp.abort_attempt();
                        continue 'walk;
                    }
                }
                let found = warp.ballot(&Lanes::from_fn(|i| {
                    key_lanes & (1 << i) != 0 && words.get(i) == key
                }));
                if let Some(lane) = gpu_sim::ffs(found) {
                    // CAS so concurrent deletes of the same key count once; on
                    // a lost race re-probe this slab like a sequential loser
                    // (who would find a tombstone and keep scanning).
                    if warp
                        .atomic_cas(slab_addr + lane, key, TOMBSTONE_KEY)
                        .is_ok()
                    {
                        warp.commit_attempt();
                        return true;
                    }
                    warp.abort_attempt();
                    continue;
                }
                let empties = warp.ballot(&Lanes::from_fn(|i| {
                    key_lanes & (1 << i) != 0 && words.get(i) == EMPTY_KEY
                }));
                warp.commit_attempt();
                if empties != 0 {
                    return false;
                }
                let next = words.get(NEXT_LANE);
                if next == NULL_ADDR {
                    return false;
                }
                parent = Some(slab_addr);
                slab_addr = next;
            }
        }
    }

    /// Walk every slab of every bucket chain, calling `f` per slab — the
    /// paper's adjacency-list iterator (§IV-B). Each step is one coalesced
    /// slab read.
    ///
    /// Snapshot-consistent per bucket: a chain's views are buffered and
    /// only emitted once the whole chain walked without next-pointer skew
    /// (validated hops, as in [`Self::search`]), so `f` never observes a
    /// half-old half-new chain and never sees a slab twice.
    pub fn for_each_slab(&self, warp: &Warp, mut f: impl FnMut(SlabView)) {
        let mut views: Vec<SlabView> = Vec::new();
        for b in 0..self.num_buckets {
            let mut restarts = 0u32;
            'walk: loop {
                views.clear();
                let mut addr = self.bucket_addr(b);
                let mut parent: Option<Addr> = None;
                loop {
                    let words = warp.read_slab(addr);
                    if let Some(p) = parent {
                        if warp.read_word(p + NEXT_LANE as u32) != addr
                            && restarts < MAX_WALK_RESTARTS
                        {
                            restarts += 1;
                            note_walk_restart(warp);
                            continue 'walk;
                        }
                    }
                    let view = SlabView {
                        addr,
                        words,
                        kind: self.kind,
                    };
                    let next = view.next();
                    views.push(view);
                    if next == NULL_ADDR {
                        break;
                    }
                    parent = Some(addr);
                    addr = next;
                }
                break;
            }
            for view in views.drain(..) {
                f(view);
            }
        }
    }

    /// Iterate every live key (both variants).
    pub fn for_each_key(&self, warp: &Warp, mut f: impl FnMut(u32)) {
        self.for_each_slab(warp, |view| {
            for k in view.keys() {
                f(k);
            }
        });
    }

    /// Iterate every live ⟨key, value⟩ pair (map variant).
    pub fn for_each_pair(&self, warp: &Warp, mut f: impl FnMut(u32, u32)) {
        assert_eq!(self.kind, TableKind::Map);
        self.for_each_slab(warp, |view| {
            for (k, v) in view.pairs() {
                f(k, v);
            }
        });
    }

    /// Free every dynamically allocated (collision) slab back to `alloc`
    /// and cut the chains back to their base slabs. Base slabs are reset to
    /// EMPTY. Used by vertex deletion (Algorithm 2 lines 18–20).
    ///
    /// Fails with the allocator's misuse errors if a chain links a slab
    /// the pool does not own (corruption); the chains freed before the
    /// faulty one stay freed.
    pub fn free_dynamic_slabs(&self, warp: &Warp, alloc: &SlabAllocator) -> Result<(), AllocError> {
        for b in 0..self.num_buckets {
            let base = self.bucket_addr(b);
            let mut addr = warp.read_slab(base).get(NEXT_LANE);
            while addr != NULL_ADDR {
                let next = warp.read_slab(addr).get(NEXT_LANE);
                alloc.free(warp, addr)?;
                addr = next;
            }
            // Reset the base slab to pristine EMPTY (including next ptr).
            warp.write_slab(base, &Lanes::splat(EMPTY_KEY));
        }
        Ok(())
    }

    /// Statistics over the chains (used by the Fig. 2 experiments).
    ///
    /// Per-bucket accumulation is buffered and merged only after the chain
    /// walked without next-pointer skew (validated hops, as in
    /// [`Self::search`]), so concurrent chain cuts cannot double-count.
    pub fn stats(&self, warp: &Warp) -> TableStats {
        let mut s = TableStats {
            buckets: self.num_buckets as u64,
            ..TableStats::default()
        };
        for b in 0..self.num_buckets {
            let mut restarts = 0u32;
            let bucket = 'walk: loop {
                let mut part = TableStats::default();
                let mut chain = 0u64;
                let mut addr = self.bucket_addr(b);
                let mut parent: Option<Addr> = None;
                loop {
                    let words = warp.read_slab(addr);
                    if let Some(p) = parent {
                        if warp.read_word(p + NEXT_LANE as u32) != addr
                            && restarts < MAX_WALK_RESTARTS
                        {
                            restarts += 1;
                            note_walk_restart(warp);
                            continue 'walk;
                        }
                    }
                    chain += 1;
                    part.slabs += 1;
                    let view = SlabView {
                        addr,
                        words,
                        kind: self.kind,
                    };
                    part.live_keys += view.keys().count() as u64;
                    for i in 0..WARP_SIZE {
                        if self.kind.key_lanes() & (1 << i) != 0 {
                            match words.get(i) {
                                EMPTY_KEY => part.empty_slots += 1,
                                TOMBSTONE_KEY => part.tombstones += 1,
                                _ => {}
                            }
                        }
                    }
                    let next = words.get(NEXT_LANE);
                    if next == NULL_ADDR {
                        part.max_chain = chain;
                        break 'walk part;
                    }
                    parent = Some(addr);
                    addr = next;
                }
            };
            s.slabs += bucket.slabs;
            s.live_keys += bucket.live_keys;
            s.tombstones += bucket.tombstones;
            s.empty_slots += bucket.empty_slots;
            s.max_chain = s.max_chain.max(bucket.max_chain);
        }
        s
    }

    /// Advance past a full slab: follow `next`, or allocate and link a new
    /// slab if at the tail. On a lost link CAS the competing slab is freed
    /// and the winner's is followed, as in SlabHash.
    ///
    /// This is the *only* allocation point of the insert paths: a failure
    /// here surfaces before any slot is claimed, which is what keeps a
    /// table consistent when an insert fails mid-chain.
    fn advance_or_grow(
        &self,
        warp: &Warp,
        alloc: &SlabAllocator,
        slab_addr: Addr,
        words: &Lanes<u32>,
    ) -> Result<Addr, AllocError> {
        let next = words.get(NEXT_LANE);
        if next != NULL_ADDR {
            return Ok(next);
        }
        // Speculative: a sequential executor only reaches the allocation
        // when the link is genuinely NULL, so a loser's allocate + link
        // CAS + rollback free must leave no trace in the counters.
        warp.begin_attempt();
        let fresh = match alloc.try_allocate(warp) {
            Ok(fresh) => fresh,
            Err(e) => {
                warp.commit_attempt();
                return Err(e);
            }
        };
        match warp.atomic_cas(slab_addr + NEXT_LANE as u32, NULL_ADDR, fresh) {
            Ok(_) => {
                warp.commit_attempt();
                Ok(fresh)
            }
            Err(winner) => {
                warp.abort_attempt();
                warp.uncharged(|w| alloc.free(w, fresh))
                    .expect("freshly allocated slab must be freeable");
                Ok(winner)
            }
        }
    }
}

/// Aggregate table statistics (Fig. 2's memory metrics are derived from
/// these across all vertices).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    pub buckets: u64,
    pub slabs: u64,
    pub live_keys: u64,
    pub tombstones: u64,
    pub empty_slots: u64,
    pub max_chain: u64,
}

impl TableStats {
    /// Merge per-table stats into a running total.
    pub fn merge(&mut self, o: &TableStats) {
        self.buckets += o.buckets;
        self.slabs += o.slabs;
        self.live_keys += o.live_keys;
        self.tombstones += o.tombstones;
        self.empty_slots += o.empty_slots;
        self.max_chain = self.max_chain.max(o.max_chain);
    }

    /// Fraction of key slots holding live keys (Fig. 2b's utilization).
    pub fn utilization(&self) -> f64 {
        let total = self.live_keys + self.tombstones + self.empty_slots;
        if total == 0 {
            0.0
        } else {
            self.live_keys as f64 / total as f64
        }
    }

    /// Average chain length in slabs per bucket (Fig. 2/3's x-axis).
    pub fn avg_chain(&self) -> f64 {
        if self.buckets == 0 {
            0.0
        } else {
            self.slabs as f64 / self.buckets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;

    fn setup(kind: TableKind, buckets: u32) -> (Device, SlabAllocator, TableDesc) {
        let dev = Device::new(1 << 18);
        let alloc = SlabAllocator::new(&dev, 1024);
        let t = TableDesc::create(&dev, kind, buckets);
        (dev, alloc, t)
    }

    fn on_warp<R: Send>(dev: &Device, f: impl Fn(&Warp) -> R + Sync) -> R {
        let out = parking_lot::Mutex::new(None);
        dev.launch_warps("hash_test", 1, |warp| {
            *out.lock() = Some(f(warp));
        });
        out.into_inner().unwrap()
    }

    #[test]
    fn buckets_for_matches_paper_formula() {
        // ⌈|Au| / (lf × Bc)⌉ with Bc = 15 (map) / 30 (set).
        assert_eq!(buckets_for(100, 0.7, TableKind::Map), 10);
        assert_eq!(buckets_for(100, 0.7, TableKind::Set), 5);
        assert_eq!(buckets_for(0, 0.7, TableKind::Map), 1);
        assert_eq!(buckets_for(1, 0.7, TableKind::Set), 1);
    }

    #[test]
    fn map_replace_and_search() {
        let (dev, alloc, t) = setup(TableKind::Map, 2);
        on_warp(&dev, |warp| {
            assert!(t.replace(warp, &alloc, 7, 70).unwrap());
            assert!(t.replace(warp, &alloc, 8, 80).unwrap());
            assert_eq!(t.search(warp, 7), Some(70));
            assert_eq!(t.search(warp, 8), Some(80));
            assert_eq!(t.search(warp, 9), None);
        });
    }

    #[test]
    fn replace_overwrites_and_reports_existing() {
        let (dev, alloc, t) = setup(TableKind::Map, 1);
        on_warp(&dev, |warp| {
            assert!(t.replace(warp, &alloc, 42, 1).unwrap());
            assert!(
                !t.replace(warp, &alloc, 42, 2).unwrap(),
                "second insert replaces"
            );
            assert_eq!(t.search(warp, 42), Some(2));
            let stats = t.stats(warp);
            assert_eq!(stats.live_keys, 1, "no duplicate keys stored");
        });
    }

    #[test]
    fn map_chains_past_one_slab() {
        let (dev, alloc, t) = setup(TableKind::Map, 1);
        on_warp(&dev, |warp| {
            // 100 keys in a single bucket => ⌈100/15⌉ = 7 slabs.
            for k in 0..100 {
                assert!(t.replace(warp, &alloc, k, k * 2).unwrap());
            }
            for k in 0..100 {
                assert_eq!(t.search(warp, k), Some(k * 2), "key {k}");
            }
            let stats = t.stats(warp);
            assert_eq!(stats.live_keys, 100);
            assert_eq!(stats.slabs, 7);
            assert_eq!(stats.max_chain, 7);
        });
        assert_eq!(alloc.live_slabs(), 6, "6 collision slabs chained");
    }

    #[test]
    fn set_insert_unique_and_contains() {
        let (dev, alloc, t) = setup(TableKind::Set, 2);
        on_warp(&dev, |warp| {
            assert!(t.insert_unique(warp, &alloc, 5).unwrap());
            assert!(!t.insert_unique(warp, &alloc, 5).unwrap());
            assert!(t.contains(warp, 5));
            assert!(!t.contains(warp, 6));
        });
    }

    #[test]
    fn set_packs_30_keys_per_slab() {
        let (dev, alloc, t) = setup(TableKind::Set, 1);
        on_warp(&dev, |warp| {
            for k in 0..30 {
                assert!(t.insert_unique(warp, &alloc, k).unwrap());
            }
            assert_eq!(t.stats(warp).slabs, 1, "30 keys fit one set slab");
            assert!(t.insert_unique(warp, &alloc, 30).unwrap());
            assert_eq!(t.stats(warp).slabs, 2, "31st key chains a slab");
        });
    }

    #[test]
    fn delete_tombstones_and_reports() {
        let (dev, alloc, t) = setup(TableKind::Map, 1);
        on_warp(&dev, |warp| {
            t.replace(warp, &alloc, 1, 10).unwrap();
            t.replace(warp, &alloc, 2, 20).unwrap();
            assert!(t.delete(warp, 1));
            assert!(!t.delete(warp, 1), "second delete is a no-op");
            assert!(!t.delete(warp, 99), "absent key");
            assert_eq!(t.search(warp, 1), None);
            assert_eq!(t.search(warp, 2), Some(20));
            let stats = t.stats(warp);
            assert_eq!(stats.tombstones, 1);
            assert_eq!(stats.live_keys, 1);
        });
    }

    #[test]
    fn tombstones_are_not_overwritten_by_insert() {
        // Paper §IV-C2: inserts append at the chain tail; tombstoned slots
        // stay dead, so empties only exist at the tail.
        let (dev, alloc, t) = setup(TableKind::Map, 1);
        on_warp(&dev, |warp| {
            for k in 0..10 {
                t.replace(warp, &alloc, k, k).unwrap();
            }
            for k in 0..5 {
                t.delete(warp, k);
            }
            t.replace(warp, &alloc, 100, 100).unwrap();
            let stats = t.stats(warp);
            assert_eq!(stats.tombstones, 5, "tombstones preserved");
            assert_eq!(stats.live_keys, 6);
            assert_eq!(t.search(warp, 100), Some(100));
        });
    }

    #[test]
    fn reinserting_deleted_key_appends_fresh_copy() {
        let (dev, alloc, t) = setup(TableKind::Map, 1);
        on_warp(&dev, |warp| {
            t.replace(warp, &alloc, 3, 30).unwrap();
            t.delete(warp, 3);
            assert!(
                t.replace(warp, &alloc, 3, 31).unwrap(),
                "reinsert counts as new"
            );
            assert_eq!(t.search(warp, 3), Some(31));
            let stats = t.stats(warp);
            assert_eq!(stats.live_keys, 1);
            assert_eq!(stats.tombstones, 1);
        });
    }

    #[test]
    fn iteration_yields_all_pairs() {
        let (dev, alloc, t) = setup(TableKind::Map, 4);
        on_warp(&dev, |warp| {
            let mut expect = std::collections::BTreeMap::new();
            for k in 0..200 {
                t.replace(warp, &alloc, k, 1000 + k).unwrap();
                expect.insert(k, 1000 + k);
            }
            for k in (0..200).step_by(3) {
                t.delete(warp, k);
                expect.remove(&k);
            }
            let mut got = std::collections::BTreeMap::new();
            t.for_each_pair(warp, |k, v| {
                assert!(got.insert(k, v).is_none(), "duplicate key {k}");
            });
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn set_iteration_yields_all_keys() {
        let (dev, alloc, t) = setup(TableKind::Set, 3);
        on_warp(&dev, |warp| {
            for k in (0..500).step_by(2) {
                t.insert_unique(warp, &alloc, k).unwrap();
            }
            let mut got: Vec<u32> = vec![];
            t.for_each_key(warp, |k| got.push(k));
            got.sort_unstable();
            let expect: Vec<u32> = (0..500).step_by(2).collect();
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn free_dynamic_slabs_releases_collision_slabs_only() {
        let (dev, alloc, t) = setup(TableKind::Map, 2);
        on_warp(&dev, |warp| {
            for k in 0..200 {
                t.replace(warp, &alloc, k, k).unwrap();
            }
            assert!(alloc.live_slabs() > 0);
            t.free_dynamic_slabs(warp, &alloc).unwrap();
            assert_eq!(alloc.live_slabs(), 0, "all collision slabs freed");
            // Base slabs are reset: table reads as empty.
            assert_eq!(t.stats(warp).live_keys, 0);
            assert_eq!(t.stats(warp).slabs, 2, "base slabs remain");
        });
    }

    #[test]
    fn search_cost_is_constant_in_table_size() {
        // The headline property: queries are O(1) slab reads at a sane
        // load factor, regardless of how many keys the table holds.
        let dev = Device::new(1 << 20);
        let alloc = SlabAllocator::new(&dev, 4096);
        let n = 3000u32;
        let buckets = buckets_for(n as usize, 0.7, TableKind::Map);
        let t = TableDesc::create(&dev, TableKind::Map, buckets);
        on_warp(&dev, |warp| {
            for k in 0..n {
                t.replace(warp, &alloc, k, k).unwrap();
            }
        });
        let before = dev.counters().snapshot();
        on_warp(&dev, |warp| {
            for k in 0..100u32 {
                t.search(warp, k * 17 % n);
            }
        });
        let d = dev.counters().snapshot().delta(&before);
        assert!(
            d.transactions <= 300,
            "100 searches should read ≤3 slabs each, got {} transactions",
            d.transactions
        );
    }

    #[test]
    fn stats_utilization_tracks_load() {
        let (dev, alloc, t) = setup(TableKind::Set, 1);
        on_warp(&dev, |warp| {
            for k in 0..15 {
                t.insert_unique(warp, &alloc, k).unwrap();
            }
            let s = t.stats(warp);
            assert_eq!(s.live_keys, 15);
            assert!((s.utilization() - 0.5).abs() < 1e-9, "15/30 slots used");
            assert_eq!(s.avg_chain(), 1.0);
        });
    }

    #[test]
    fn insert_recycling_reuses_tombstones() {
        let (dev, alloc, t) = setup(TableKind::Map, 1);
        on_warp(&dev, |warp| {
            for k in 0..10 {
                t.replace(warp, &alloc, k, k).unwrap();
            }
            for k in 0..5 {
                t.delete(warp, k);
            }
            // Recycling insert lands in the first tombstone: no growth.
            let slabs_before = t.stats(warp).slabs;
            assert!(t.insert_recycling(warp, &alloc, 100, 1).unwrap());
            assert!(t.insert_recycling(warp, &alloc, 101, 2).unwrap());
            let s = t.stats(warp);
            assert_eq!(s.slabs, slabs_before, "no new slabs needed");
            assert_eq!(s.tombstones, 3, "two tombstones consumed");
            assert_eq!(t.search(warp, 100), Some(1));
            assert_eq!(t.search(warp, 101), Some(2));
        });
    }

    #[test]
    fn insert_recycling_keeps_uniqueness_and_replace_semantics() {
        let (dev, alloc, t) = setup(TableKind::Map, 1);
        on_warp(&dev, |warp| {
            assert!(t.insert_recycling(warp, &alloc, 7, 1).unwrap());
            assert!(!t.insert_recycling(warp, &alloc, 7, 2).unwrap(), "replaces");
            assert_eq!(t.search(warp, 7), Some(2));
            assert_eq!(t.stats(warp).live_keys, 1);
            // Interleaves correctly with the standard path.
            t.delete(warp, 7);
            assert!(t.replace(warp, &alloc, 7, 3).unwrap());
            assert_eq!(t.stats(warp).live_keys, 1);
        });
    }

    #[test]
    fn insert_recycling_set_variant() {
        let (dev, alloc, t) = setup(TableKind::Set, 1);
        on_warp(&dev, |warp| {
            for k in 0..40 {
                t.insert_unique(warp, &alloc, k).unwrap();
            }
            for k in 0..20 {
                t.delete(warp, k);
            }
            let slabs_before = t.stats(warp).slabs;
            for k in 100..115 {
                assert!(t.insert_recycling(warp, &alloc, k, 0).unwrap());
            }
            assert_eq!(t.stats(warp).slabs, slabs_before);
            for k in 100..115 {
                assert!(t.contains(warp, k));
            }
        });
    }

    #[test]
    fn insert_recycling_grows_when_no_tombstones() {
        let (dev, alloc, t) = setup(TableKind::Map, 1);
        on_warp(&dev, |warp| {
            for k in 0..40 {
                assert!(t.insert_recycling(warp, &alloc, k, k).unwrap(), "key {k}");
            }
            let s = t.stats(warp);
            assert_eq!(s.live_keys, 40);
            assert_eq!(s.slabs, 3, "⌈40/15⌉ slabs chained");
            for k in 0..40 {
                assert_eq!(t.search(warp, k), Some(k));
            }
        });
    }

    #[test]
    fn concurrent_recycling_inserts_stay_unique() {
        use gpu_sim::ExecPolicy;
        let dev = Device::with_policy(1 << 20, ExecPolicy::Threaded(4));
        let alloc = SlabAllocator::new(&dev, 1024);
        let t = TableDesc::create(&dev, TableKind::Map, 1);
        dev.launch_warps("hash_test", 1, |warp| {
            for k in 0..12 {
                t.replace(warp, &alloc, k, 0).unwrap();
            }
            for k in 0..12 {
                t.delete(warp, k);
            }
        });
        dev.launch_warps("hash_test", 16, |warp| {
            for k in 100..108 {
                t.insert_recycling(warp, &alloc, k, warp.warp_id()).unwrap();
            }
        });
        let count = std::sync::atomic::AtomicU32::new(0);
        dev.launch_warps("hash_test", 1, |warp| {
            let mut seen = std::collections::HashSet::new();
            t.for_each_key(warp, |k| {
                assert!(seen.insert(k), "duplicate {k}");
            });
            count.store(seen.len() as u32, std::sync::atomic::Ordering::Release);
        });
        assert_eq!(count.into_inner(), 8);
    }

    #[test]
    fn concurrent_same_key_inserts_keep_uniqueness() {
        use gpu_sim::ExecPolicy;
        // Many warps all replace the same small key set concurrently; the
        // first-empty-CAS-retry protocol must never produce duplicates.
        let dev = Device::with_policy(1 << 20, ExecPolicy::Threaded(4));
        let alloc = SlabAllocator::new(&dev, 4096);
        let t = TableDesc::create(&dev, TableKind::Map, 2);
        dev.launch_warps("hash_test", 32, |warp| {
            for k in 0..20 {
                t.replace(warp, &alloc, k, warp.warp_id()).unwrap();
            }
        });
        let counts = parking_lot::Mutex::new(std::collections::HashMap::new());
        dev.launch_warps("hash_test", 1, |warp| {
            t.for_each_pair(warp, |k, _| {
                *counts.lock().entry(k).or_insert(0u32) += 1;
            });
        });
        let counts = counts.into_inner();
        assert_eq!(counts.len(), 20);
        for (k, c) in counts {
            assert_eq!(c, 1, "key {k} stored {c} times");
        }
    }

    #[test]
    fn profiler_histograms_track_probe_and_chain_depth() {
        use gpu_sim::{DeviceConfig, ProfilerConfig};
        let dev = Device::with_config(
            DeviceConfig::new(1 << 18).with_profiler(ProfilerConfig::default()),
        );
        let alloc = SlabAllocator::new(&dev, 1024);
        let t = TableDesc::create(&dev, TableKind::Map, 1);
        on_warp(&dev, |warp| {
            // 100 keys in one bucket: chain grows to ⌈100/15⌉ = 7 slabs.
            for k in 0..100 {
                t.replace(warp, &alloc, k, k).unwrap();
            }
            for k in 0..100 {
                t.search(warp, k);
            }
        });
        let sums = dev.profiler().unwrap().metric_summaries();
        let probe = sums
            .iter()
            .find(|s| s.name == "slab_hash.probe_depth")
            .expect("probe-depth histogram missing");
        assert_eq!(probe.count, 100, "one sample per search");
        assert!(
            probe.max >= 4,
            "deep chain walks observed, max {}",
            probe.max
        );
        let chain = sums
            .iter()
            .find(|s| s.name == "slab_hash.chain_at_insert")
            .expect("chain-at-insert histogram missing");
        assert_eq!(chain.count, 100, "one sample per new key");
        assert_eq!(chain.max, 7, "last keys land on the 7th slab");
    }

    #[test]
    fn concurrent_deletes_count_once() {
        use gpu_sim::ExecPolicy;
        let dev = Device::with_policy(1 << 20, ExecPolicy::Threaded(4));
        let alloc = SlabAllocator::new(&dev, 1024);
        let t = TableDesc::create(&dev, TableKind::Set, 4);
        dev.launch_warps("hash_test", 1, |warp| {
            for k in 0..64 {
                t.insert_unique(warp, &alloc, k).unwrap();
            }
        });
        let deleted = std::sync::atomic::AtomicU32::new(0);
        dev.launch_warps("hash_test", 16, |warp| {
            for k in 0..64 {
                if t.delete(warp, k) {
                    deleted.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                }
            }
        });
        assert_eq!(
            deleted.load(std::sync::atomic::Ordering::Acquire),
            64,
            "each key deleted exactly once across 16 racing warps"
        );
    }
}
