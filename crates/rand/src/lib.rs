//! A minimal in-workspace stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no registry access, so this crate provides the
//! slice of `rand` the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::random`] / [`Rng::random_range`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256**
//! (seeded through SplitMix64), which is deterministic across platforms —
//! the only property the graph generators actually rely on. Streams differ
//! from upstream `rand`, which only reshuffles the synthetic datasets.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain by [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`Rng::random_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Uniform draw from `[0, span)` by widening rejection-free multiply
/// (Lemire's method, bias < 2^-64 — irrelevant at these sizes).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + below(rng, span) as i128) as Self
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s domain (`[0,1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice methods driven by a generator.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3..13u32);
            assert!((3..13).contains(&v));
            seen[v as usize - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        let u = rng.random_range(0..5usize);
        assert!(u < 5);
        let i = rng.random_range(1..1_000_000);
        assert!((1..1_000_000).contains(&i));
    }

    #[test]
    #[should_panic(expected = "empty random_range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(5..5u32);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never stay in order");
    }
}
